"""Cost-based primitive selection (Section V-A).

"Our primitive generally performs close to optimally in most cases;
however, for freshly started tasks, it may be preferable to use the
kill primitive, and for tasks that are very close to completion it
may be better to simply wait for them to finish."

:class:`PreemptionAdvisor` encodes that guidance: given a victim's
progress and memory footprint it recommends wait, kill, or suspend,
with an estimated cost breakdown that schedulers can log or override.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MB


class PrimitiveChoice(enum.Enum):
    """The advisor's recommendation."""

    WAIT = "wait"
    KILL = "kill"
    SUSPEND = "suspend"


@dataclass
class CostEstimate:
    """Estimated seconds of damage for each strategy.

    ``latency`` is the delay inflicted on the high-priority task;
    ``redundant`` is work re-executed; ``paging`` is suspend's
    page-out/page-in cost estimate.
    """

    wait_latency: float
    kill_redundant: float
    suspend_paging: float

    def best(self, latency_weight: float = 1.0) -> PrimitiveChoice:
        """Pick the strategy with the smallest weighted damage."""
        scores = {
            PrimitiveChoice.WAIT: self.wait_latency * latency_weight,
            PrimitiveChoice.KILL: self.kill_redundant,
            PrimitiveChoice.SUSPEND: self.suspend_paging,
        }
        return min(scores, key=lambda k: (scores[k], k.value))


class PreemptionAdvisor:
    """Recommends a primitive per victim.

    Parameters
    ----------
    fresh_threshold:
        Progress below which a task counts as freshly started (kill
        wastes almost nothing).
    nearly_done_threshold:
        Progress above which waiting is cheap.
    swap_bandwidth:
        Effective swap device bandwidth used for the paging estimate.
    """

    def __init__(
        self,
        fresh_threshold: float = 0.05,
        nearly_done_threshold: float = 0.95,
        swap_bandwidth: float = 90 * MB,
    ):
        if not 0 <= fresh_threshold < nearly_done_threshold <= 1:
            raise ConfigurationError(
                "thresholds must satisfy 0 <= fresh < nearly_done <= 1"
            )
        if swap_bandwidth <= 0:
            raise ConfigurationError("swap_bandwidth must be positive")
        self.fresh_threshold = fresh_threshold
        self.nearly_done_threshold = nearly_done_threshold
        self.swap_bandwidth = swap_bandwidth

    def estimate(
        self,
        progress: float,
        task_duration: float,
        resident_bytes: int,
        memory_pressure: float,
    ) -> CostEstimate:
        """Cost breakdown for one victim.

        ``memory_pressure`` in [0, 1] scales the expected fraction of
        the victim's memory that would actually hit swap.
        """
        progress = min(1.0, max(0.0, progress))
        remaining = (1.0 - progress) * task_duration
        redone = progress * task_duration
        spill_fraction = min(1.0, max(0.0, memory_pressure))
        paging = 2.0 * (resident_bytes * spill_fraction) / self.swap_bandwidth
        return CostEstimate(
            wait_latency=remaining,
            kill_redundant=redone,
            suspend_paging=paging,
        )

    def recommend(
        self,
        progress: float,
        task_duration: float,
        resident_bytes: int = 0,
        memory_pressure: float = 0.0,
    ) -> PrimitiveChoice:
        """Threshold rules first (the paper's guidance), cost model for
        the middle ground."""
        if progress < self.fresh_threshold:
            return PrimitiveChoice.KILL
        if progress > self.nearly_done_threshold:
            return PrimitiveChoice.WAIT
        estimate = self.estimate(
            progress, task_duration, resident_bytes, memory_pressure
        )
        # In the middle of a task, suspension wins unless paging costs
        # would exceed both alternatives.
        if (
            estimate.suspend_paging <= estimate.wait_latency
            and estimate.suspend_paging <= estimate.kill_redundant
        ):
            return PrimitiveChoice.SUSPEND
        return estimate.best()
