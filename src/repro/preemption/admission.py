"""Swap-aware suspend admission control (Section III-A, actively managed).

The paper's suspend primitive is only safe under the constraint that
"the aggregate memory occupation of the tasks running and suspended on
a machine" fits in RAM + swap.  Historically this repository modelled
the constraint passively -- a
:class:`~repro.errors.SwapExhaustedError` when the swap device
overflowed -- and the suspend primitive's static pre-check compared the
victim against the swap *capacity*, ignoring how much of it (and of
RAM) was actually occupied.

This module manages the constraint: before a scheduler issues SIGTSTP
the :class:`SuspendAdmissionGate` reads the victim node's live
:class:`~repro.osmodel.vmm.MemoryHeadroom` -- the same snapshot every
heartbeat now carries -- and admits the suspension only if, after the
victim's resident set is parked and the configured incoming demand
lands, RAM + swap can still absorb everything.  Denied suspensions
walk a configurable fallback ladder (suspend -> wait -> kill): a
transient denial waits for pressure to clear (the scheduler simply
retries at a later heartbeat), while a victim that could *never* be
admitted on its node may be killed instead if the ladder says so.

The gate is deliberately silent on admission (no trace events, no RNG)
so that gated scheduling with abundant swap is event-for-event
identical to ungated scheduling -- the differential test in
``tests/test_admission.py`` pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hadoop.states import AttemptState, TipState
from repro.hadoop.task import TaskInProgress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster
    from repro.preemption.base import PreemptionPrimitive

#: ladder steps a denied suspension may fall back to
FALLBACK_STEPS = ("wait", "kill")


@dataclass(frozen=True)
class AdmissionConfig:
    """Policy knobs of the suspend-admission gate.

    Attributes
    ----------
    reserve_bytes:
        Memory the node must still be able to absorb *after* the
        victim is suspended -- the expected demand of the incoming
        high-priority task (its JVM plus its footprint).  The gate
        admits a suspension only when free RAM + droppable cache +
        free swap cover the victim's pageable bytes and this reserve.
    fallback:
        The ladder walked when a suspension is denied, in order.
        ``"wait"`` applies to *transient* denials (memory pressure can
        clear; the scheduler retries later) and ``"kill"`` to any
        denial; the first applicable step wins and an exhausted ladder
        defaults to waiting.
    max_suspended_per_node:
        Cap on concurrently suspended tasks per node; ``None`` uses
        the cluster's ``HadoopConfig.max_suspended_per_tracker``.
    suspended_budget_bytes:
        Hard cap on the *total* suspended bytes (resident + swapped,
        including in-flight suspensions) a node may hold.  The
        instantaneous supply check above only guarantees the next
        incoming task fits; after admission the node keeps launching
        tasks as slots free, so the standing invariant that keeps a
        workload OOM-free at every scale is
        ``suspended_total <= RAM + swap - worst-case running set``.
        Callers that know their workload's worst-case running set set
        this to that difference; ``None`` disables the check.
    """

    reserve_bytes: int = 0
    fallback: Tuple[str, ...] = ("wait",)
    max_suspended_per_node: Optional[int] = None
    suspended_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.reserve_bytes < 0:
            raise ConfigurationError("reserve_bytes may not be negative")
        if not self.fallback:
            raise ConfigurationError("fallback ladder may not be empty")
        for step in self.fallback:
            if step not in FALLBACK_STEPS:
                raise ConfigurationError(
                    f"unknown fallback step {step!r}; "
                    f"known: {', '.join(FALLBACK_STEPS)}"
                )
        if (
            self.max_suspended_per_node is not None
            and self.max_suspended_per_node < 0
        ):
            raise ConfigurationError("max_suspended_per_node out of range")
        if (
            self.suspended_budget_bytes is not None
            and self.suspended_budget_bytes < 0
        ):
            raise ConfigurationError("suspended_budget_bytes out of range")


@dataclass(slots=True)
class AdmissionDecision:
    """Outcome of one gate evaluation."""

    admitted: bool
    #: action the caller should take: "suspend", "wait" or "kill"
    action: str
    reason: str = ""
    #: True when the victim could never be admitted on this node
    #: (resident set exceeds the whole swap device), as opposed to a
    #: transient memory-pressure denial
    permanent: bool = False


@dataclass(slots=True)
class AdmissionStats:
    """Counters the memscale study reports."""

    admitted: int = 0
    denied: int = 0
    fallback_waits: int = 0
    fallback_kills: int = 0
    deny_reasons: dict = field(default_factory=dict)


class SuspendAdmissionGate:
    """Decides, per victim, whether SIGTSTP is memory-safe right now."""

    def __init__(self, cluster: "HadoopCluster", config: Optional[AdmissionConfig] = None):
        self.cluster = cluster
        self.config = config or AdmissionConfig()
        self.stats = AdmissionStats()

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, tip: TaskInProgress) -> AdmissionDecision:
        """Admit or deny suspending ``tip``'s live attempt.

        Denials carry the first applicable fallback-ladder action.
        The arithmetic: after suspension the victim's resident pages
        join the node's stopped pool; the incoming task then demands
        ``reserve_bytes``.  That demand is served from free RAM,
        droppable page cache, and RAM freed by paging stopped tasks
        out -- the latter bounded by free swap.  Suspensions whose
        stop directive is still in flight (MUST_SUSPEND tips on the
        same node) are counted as already stopped, so back-to-back
        admissions within one heartbeat cannot jointly oversubscribe
        a node that each alone would fit.
        """
        tracker = self.cluster.trackers.get(tip.tracker or "")
        if tracker is None:
            return self._deny("no-tracker", "no live tracker", permanent=True)
        attempt = tracker.attempts.get(tip.active_attempt_id or "")
        if attempt is None:
            return self._deny("no-attempt", "no live attempt", permanent=True)

        cap = self.config.max_suspended_per_node
        if cap is None:
            cap = tracker.config.max_suspended_per_tracker
        # Same count semantics as the primitive's static check (landed
        # stops only): in-flight suspensions are accounted by *bytes*
        # below, where they actually matter.
        if len(tracker.suspended_attempts()) >= cap:
            return self._deny(
                "count-cap",
                f"{tracker.host} already holds "
                f"{len(tracker.suspended_attempts())} suspended tasks",
            )

        head = tracker.kernel.memory_headroom()
        victim_bytes = attempt.resident_bytes()
        if victim_bytes > tracker.kernel.vmm.swap.capacity:
            # Not even an empty swap device could park this image.
            return self._deny(
                "victim-exceeds-swap",
                f"victim resident {victim_bytes} exceeds swap capacity",
                permanent=True,
            )
        pending_bytes = self._pending_suspend_bytes(
            tracker, exclude=attempt.attempt_id
        )
        if self.config.suspended_budget_bytes is not None:
            # Standing invariant: total suspended bytes stay within
            # what RAM + swap can hold *alongside the worst-case
            # running set* -- the future launches the supply check
            # below cannot see.
            suspended_after = (
                head.stopped_resident
                + head.stopped_swapped
                + pending_bytes
                + victim_bytes
            )
            if suspended_after > self.config.suspended_budget_bytes:
                return self._deny(
                    "budget",
                    f"suspended total {suspended_after} would exceed the "
                    f"node budget {self.config.suspended_budget_bytes}",
                )
        # Pageable supply: stopped pages (including the victim's and
        # any in-flight suspensions') can leave RAM for swap, capped by
        # the swap space actually free.
        pageable = min(
            head.stopped_resident + pending_bytes + victim_bytes, head.free_swap
        )
        supply = head.free_ram + head.evictable_cache + pageable
        if self.config.reserve_bytes > supply:
            return self._deny(
                "no-headroom",
                f"reserve {self.config.reserve_bytes} exceeds supply {supply} "
                f"(free_ram={head.free_ram} cache={head.evictable_cache} "
                f"pageable={pageable})",
            )
        self.stats.admitted += 1
        return AdmissionDecision(admitted=True, action="suspend")

    def _pending_suspend_bytes(self, tracker, exclude: str) -> int:
        """Resident bytes of attempts whose suspension is in flight:
        the tip is MUST_SUSPEND but the stop has not landed yet.
        Counting them as already stopped keeps back-to-back admissions
        within one heartbeat from jointly oversubscribing a node each
        alone would fit."""
        total = 0
        jobs = self.cluster.jobtracker
        for attempt in tracker._reportable.values():
            if attempt.attempt_id == exclude:
                continue
            if attempt.state not in (AttemptState.RUNNING, AttemptState.SUSPENDING):
                continue
            tip = jobs._tips.get(attempt.tip_id)
            if tip is None or tip.state is not TipState.MUST_SUSPEND:
                continue
            if tip.active_attempt_id != attempt.attempt_id:
                continue
            total += attempt.resident_bytes()
        return total

    def _deny(
        self, key: str, reason: str, permanent: bool = False
    ) -> AdmissionDecision:
        self.stats.denied += 1
        self.stats.deny_reasons[key] = self.stats.deny_reasons.get(key, 0) + 1
        action = "wait"
        for step in self.config.fallback:
            if step == "wait" and not permanent:
                action = "wait"
                break
            if step == "kill":
                action = "kill"
                break
        return AdmissionDecision(
            admitted=False, action=action, reason=reason, permanent=permanent
        )

    # -- the gate-aware preempt entry point ---------------------------------

    def preempt(self, primitive: "PreemptionPrimitive", tip: TaskInProgress) -> str:
        """Preempt ``tip`` through the gate; returns the action taken
        ("suspend", "wait" or "kill").

        Admission runs the primitive untouched -- same call, same
        order, no extra events -- so abundant-headroom behaviour is
        identical to ungated scheduling.  Denial walks the fallback
        ladder: "wait" leaves the victim running (the scheduler
        retries at a later heartbeat), "kill" falls back to the
        pre-existing kill directive.  The gate never traces: a "wait"
        denial must leave the simulation exactly as an ungated
        NotPreemptibleError would (the differential tests compare
        TraceLog digests); denials are observable through
        :attr:`stats` instead.
        """
        decision = self.evaluate(tip)
        if decision.admitted:
            primitive.preempt(tip)
            return "suspend"
        if decision.action == "kill":
            self.stats.fallback_kills += 1
            if tip.state is TipState.RUNNING:
                self.cluster.jobtracker.kill_task(tip.tip_id)
            return "kill"
        self.stats.fallback_waits += 1
        return "wait"


def admit_and_preempt(
    gate: Optional[SuspendAdmissionGate],
    primitive: "PreemptionPrimitive",
    tip: TaskInProgress,
) -> str:
    """Shared ladder walk for schedulers and harnesses.

    Without a gate (or for non-suspend primitives) this is exactly
    ``primitive.preempt(tip)``; with one, suspend requests pass
    through :meth:`SuspendAdmissionGate.preempt`.  Returns the action
    taken so callers can count outcomes; raises
    :class:`~repro.errors.NotPreemptibleError` exactly where the bare
    primitive would.
    """
    from repro.preemption.base import PrimitiveName

    if gate is None or primitive.name is not PrimitiveName.SUSPEND:
        primitive.preempt(tip)
        return primitive.name.value
    return gate.preempt(primitive, tip)


__all__ = [
    "AdmissionConfig",
    "AdmissionDecision",
    "AdmissionStats",
    "SuspendAdmissionGate",
    "admit_and_preempt",
]
