"""Task preemption primitives -- the paper's contribution.

Three baseline strategies plus the paper's new one, behind a common
:class:`~repro.preemption.base.PreemptionPrimitive` interface:

* :class:`~repro.preemption.wait.WaitPrimitive` -- do nothing; the
  high-priority work waits for the victim to finish (large latency, no
  redundant work);
* :class:`~repro.preemption.kill.KillPrimitive` -- SIGKILL the victim
  and reschedule it from scratch (small latency, wasted work);
* :class:`~repro.preemption.suspend.SuspendResumePrimitive` -- the
  paper's OS-assisted suspend/resume built on SIGTSTP/SIGCONT and OS
  paging (small latency *and* no redundant work);
* :class:`~repro.preemption.natjam.NatjamPrimitive` -- an
  application-level checkpoint/restore comparator in the style of
  Natjam (Cho et al., SoCC'13), which always pays
  serialize/deserialize costs.

Plus the scheduler-side machinery the paper's Section V discusses:
eviction policies (:mod:`repro.preemption.eviction`), a cost advisor
(:mod:`repro.preemption.costs`), and resume-locality handling with
delay scheduling (:mod:`repro.preemption.locality`).
"""

from repro.preemption.admission import (
    AdmissionConfig,
    AdmissionDecision,
    SuspendAdmissionGate,
    admit_and_preempt,
)
from repro.preemption.base import (
    PreemptionPrimitive,
    PrimitiveName,
    make_primitive,
)
from repro.preemption.costs import PreemptionAdvisor, PrimitiveChoice
from repro.preemption.eviction import (
    ClosestToCompletionPolicy,
    EvictionCandidate,
    EvictionPolicy,
    FurthestFromCompletionPolicy,
    LargestMemoryPolicy,
    RandomPolicy,
    SmallestMemoryPolicy,
    SuspendCostPolicy,
)
from repro.preemption.kill import KillPrimitive
from repro.preemption.locality import ResumeLocalityManager
from repro.preemption.migration import MigrationPrimitive
from repro.preemption.natjam import NatjamPrimitive
from repro.preemption.suspend import SuspendResumePrimitive
from repro.preemption.wait import WaitPrimitive

__all__ = [
    "PreemptionPrimitive",
    "PrimitiveName",
    "make_primitive",
    "WaitPrimitive",
    "KillPrimitive",
    "SuspendResumePrimitive",
    "NatjamPrimitive",
    "MigrationPrimitive",
    "EvictionPolicy",
    "EvictionCandidate",
    "ClosestToCompletionPolicy",
    "FurthestFromCompletionPolicy",
    "SmallestMemoryPolicy",
    "LargestMemoryPolicy",
    "RandomPolicy",
    "SuspendCostPolicy",
    "AdmissionConfig",
    "AdmissionDecision",
    "SuspendAdmissionGate",
    "admit_and_preempt",
    "PreemptionAdvisor",
    "PrimitiveChoice",
    "ResumeLocalityManager",
]
