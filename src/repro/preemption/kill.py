"""The ``kill`` primitive: Hadoop's stock eviction mechanism.

"Another approach is to kill tasks ... the second one wastes work
done by killed tasks."  The victim's attempt receives SIGKILL, a
cleanup attempt removes its partial outputs (holding the slot
briefly), and the task is rescheduled from scratch once the
high-priority work is done -- all of which the makespan metric pays
for (Figure 2b's rising curve).
"""

from __future__ import annotations

from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName


class KillPrimitive(PreemptionPrimitive):
    """SIGKILL now, reschedule later."""

    name = PrimitiveName.KILL

    def preempt(self, tip: TaskInProgress) -> None:
        """Kill the running attempt; progress is lost."""
        self._require_running(tip)
        self.preempt_count += 1
        self.trace("kill", tip=tip.tip_id, progress=round(tip.progress, 3))
        self.jobtracker.kill_task(tip.tip_id)

    def restore(self, tip: TaskInProgress) -> None:
        """Nothing to do: the killed TIP re-enters the UNASSIGNED pool
        and the scheduler relaunches it when priorities allow."""
        self.restore_count += 1
        if tip.state is TipState.KILLED:
            # Job was not killed; TIP should already be requeued by the
            # JobTracker's report processing.  Defensive requeue:
            tip.set_state(TipState.UNASSIGNED)
