"""Application-level checkpoint/restore, in the style of Natjam.

Natjam (Cho et al., SoCC'13) preempts "at the application layer, and
saves counters about task progress, which allow to resume tasks by
fast-forwarding to their previous states".  The paper contrasts it
with the OS-assisted approach on two points, both modelled here:

* Natjam **always pays serialization**: suspension writes the task's
  progress counters and buffered state to stable storage, resumption
  reads them back and fast-forwards -- "the overhead for
  serialization, writing to disk, and deserialization of a state that
  could be large";
* Natjam is **not transparent for stateful tasks**: arbitrary JVM
  state is lost, so tasks that keep state in the task JVM need manual
  hooks that serialize the whole footprint (modelled by
  ``supports_stateful``; without hooks a stateful victim is simply
  killed and loses its progress).

The mechanism rides the existing kill machinery: the victim keeps its
slot while the checkpoint is written, is then SIGKILLed, and its
rescheduled attempt starts from a spec rewritten (via the JobTracker's
spec-transformer hook) to read the checkpoint back and process only
the remaining input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import TaskStateError
from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName
from repro.units import MB
from repro.workloads.jobspec import TaskSpec


@dataclass
class Checkpoint:
    """Saved progress of one preempted task."""

    absolute_progress: float
    state_bytes: int
    saved_at: float


class NatjamPrimitive(PreemptionPrimitive):
    """Checkpoint to disk, kill, fast-forward on reschedule."""

    name = PrimitiveName.NATJAM

    def __init__(
        self,
        cluster,
        fixed_state_bytes: int = 256 * MB,
        checkpoint_overhead: float = 1.0,
        supports_stateful: bool = True,
    ):
        super().__init__(cluster)
        #: execution-engine state (sort buffers, spill metadata) that
        #: must be serialized even for "stateless" mappers
        self.fixed_state_bytes = fixed_state_bytes
        #: fixed coordination cost per checkpoint (Natjam's suspend
        #: message round-trips and HDFS namenode operations)
        self.checkpoint_overhead = checkpoint_overhead
        self.supports_stateful = supports_stateful
        self.checkpoints: Dict[str, Checkpoint] = {}
        self.serialize_seconds = 0.0
        self.deserialize_bytes = 0
        cluster.jobtracker.spec_transformers.append(self._transform_spec)

    # -- preempt ------------------------------------------------------------

    def preempt(self, tip: TaskInProgress) -> None:
        """Write a checkpoint, then kill the attempt."""
        self._require_running(tip)
        self.preempt_count += 1
        attempt = self.attempt_of(tip)
        if attempt is None:
            raise TaskStateError(f"{tip.tip_id} has no live attempt")

        if tip.spec.stateful and not self.supports_stateful:
            # No serialization hooks: the checkpoint cannot capture the
            # JVM state, so this degenerates to a plain kill.
            self.trace("natjam-degenerate-kill", tip=tip.tip_id)
            self.jobtracker.kill_task(tip.tip_id)
            return

        progress = attempt.progress()
        state_bytes = self.fixed_state_bytes
        if tip.spec.stateful:
            state_bytes += tip.spec.footprint_bytes
        kernel = attempt.kernel
        cost = kernel.disk.write_burst_cost(state_bytes)
        kernel.disk.account_burst(cost, write=True)
        serialize_time = cost.total_time + self.checkpoint_overhead
        self.serialize_seconds += serialize_time

        previous = self.checkpoints.get(tip.tip_id)
        base = previous.absolute_progress if previous else 0.0
        absolute = base + (1.0 - base) * progress
        self.checkpoints[tip.tip_id] = Checkpoint(
            absolute_progress=absolute,
            state_bytes=state_bytes,
            saved_at=self.cluster.sim.now,
        )
        self.trace(
            "natjam-checkpoint",
            tip=tip.tip_id,
            progress=round(absolute, 3),
            state=state_bytes,
            serialize=round(serialize_time, 2),
        )
        # The victim keeps its slot while the checkpoint drains, then
        # dies; the JobTracker reschedules it like any killed task.
        self.cluster.sim.schedule(
            serialize_time,
            self._kill_after_checkpoint,
            tip,
            label=f"natjam.kill:{tip.tip_id}",
        )

    def _kill_after_checkpoint(self, tip: TaskInProgress) -> None:
        try:
            self.jobtracker.kill_task(tip.tip_id)
        except TaskStateError:
            # Completed in the meanwhile; drop the checkpoint.
            self.checkpoints.pop(tip.tip_id, None)

    # -- restore -----------------------------------------------------------------

    def restore(self, tip: TaskInProgress) -> None:
        """Nothing explicit: the TIP is already requeued and priorities
        let it back in; the spec transformer applies the fast-forward."""
        self.restore_count += 1

    # -- spec rewriting ------------------------------------------------------------

    def _transform_spec(self, tip: TaskInProgress, spec: TaskSpec) -> TaskSpec:
        checkpoint = self.checkpoints.get(tip.tip_id)
        if checkpoint is None:
            return spec
        import dataclasses

        remaining = max(0, int(spec.input_bytes * (1.0 - checkpoint.absolute_progress)))
        self.deserialize_bytes += checkpoint.state_bytes
        self.trace(
            "natjam-restore",
            tip=tip.tip_id,
            from_progress=round(checkpoint.absolute_progress, 3),
        )
        return dataclasses.replace(
            spec,
            input_bytes=remaining,
            resume_read_bytes=checkpoint.state_bytes,
        )
