"""Resume locality and delay scheduling (Section V-A).

"In our implementation, a suspended process can only be resumed on
the same machine it was suspended on.  If the same task gets scheduled
on a different machine, it has to be restarted from scratch ... We
call this issue resume locality ... Hadoop schedulers generally handle
data locality by using the simple technique of delay scheduling:
waiting a fixed amount of time before scheduling non-local copies.
The same technique can be used for our resume locality issue."

:class:`ResumeLocalityManager` implements exactly that: when a
suspended task's tracker stays busy past the delay threshold, the
manager converts the suspension into a *delayed kill* (restart from
scratch elsewhere), which is the fallback the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ResumeLocalityError, TaskStateError
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster


@dataclass
class PendingResume:
    """Book-keeping for one resume request being delayed."""

    tip: TaskInProgress
    requested_at: float
    deadline: float
    resolved: bool = False


class ResumeLocalityManager:
    """Delay-scheduling for resumes, with restart-from-scratch fallback."""

    def __init__(self, cluster: "HadoopCluster", delay_threshold: float = 15.0):
        if delay_threshold < 0:
            raise ResumeLocalityError("delay threshold may not be negative")
        self.cluster = cluster
        self.delay_threshold = delay_threshold
        self.pending: Dict[str, PendingResume] = {}
        self.local_resumes = 0
        self.non_local_restarts = 0

    # -- API ----------------------------------------------------------------

    def request_resume(self, tip: TaskInProgress) -> None:
        """Ask for a resume; resolves locally if possible, otherwise
        arms the delay timer."""
        if tip.state is not TipState.SUSPENDED:
            raise TaskStateError(
                f"{tip.tip_id} is {tip.state.value}; only SUSPENDED tasks resume"
            )
        now = self.cluster.sim.now
        entry = PendingResume(
            tip=tip, requested_at=now, deadline=now + self.delay_threshold
        )
        self.pending[tip.tip_id] = entry
        if self._tracker_has_slot(tip):
            self._resolve_local(entry)
            return
        # The JobTracker holds MUST_RESUME directives until a slot
        # frees; we mark the intent now and watch the deadline.
        self.cluster.jobtracker.resume_task(tip.tip_id)
        self.cluster.sim.schedule(
            self.delay_threshold,
            self._deadline_check,
            entry,
            label=f"locality.deadline:{tip.tip_id}",
        )

    # -- internals ------------------------------------------------------------

    def _tracker_has_slot(self, tip: TaskInProgress) -> bool:
        tracker = self.cluster.trackers.get(tip.tracker or "")
        if tracker is None:
            return False
        if tip.kind.value == "reduce":
            return tracker.free_reduce_slots > 0
        return tracker.free_map_slots > 0

    def _resolve_local(self, entry: PendingResume) -> None:
        entry.resolved = True
        self.local_resumes += 1
        self.pending.pop(entry.tip.tip_id, None)
        self.cluster.jobtracker.resume_task(entry.tip.tip_id)
        self.cluster.trace("locality.local-resume", tip=entry.tip.tip_id)

    def _deadline_check(self, entry: PendingResume) -> None:
        tip = entry.tip
        if entry.resolved or tip.state in (TipState.RUNNING, TipState.SUCCEEDED):
            # Resume landed (or the task finished) before the deadline.
            entry.resolved = True
            self.pending.pop(tip.tip_id, None)
            self.local_resumes += 1
            return
        if tip.state not in (TipState.SUSPENDED, TipState.MUST_RESUME):
            self.pending.pop(tip.tip_id, None)
            return
        # Delay exhausted: restart from scratch on any machine -- "in
        # that case, the suspend is effectively analogous to a delayed
        # kill".
        entry.resolved = True
        self.pending.pop(tip.tip_id, None)
        self.non_local_restarts += 1
        self.cluster.trace("locality.non-local-restart", tip=tip.tip_id)
        try:
            self.cluster.jobtracker.kill_task(tip.tip_id)
        except TaskStateError:  # pragma: no cover - race with completion
            pass

    def stats(self) -> Dict[str, int]:
        """Counts of local resumes vs non-local restarts."""
        return {
            "local_resumes": self.local_resumes,
            "non_local_restarts": self.non_local_restarts,
            "pending": len(self.pending),
        }
