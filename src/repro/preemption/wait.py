"""The ``wait`` strategy: preempt by not preempting.

"One technique is to wait for tasks that should be preempted to
complete" -- the high-priority work simply queues behind the victim.
No work is wasted, but the high-priority task's sojourn time absorbs
the victim's whole remaining runtime (Figure 2a's upper curve).
"""

from __future__ import annotations

from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName


class WaitPrimitive(PreemptionPrimitive):
    """No-op preemption: rely on priority ordering at the next free slot."""

    name = PrimitiveName.WAIT

    def preempt(self, tip: TaskInProgress) -> None:
        """Deliberately do nothing; priorities settle it at slot release."""
        self.preempt_count += 1
        self.trace("wait", tip=tip.tip_id)

    def restore(self, tip: TaskInProgress) -> None:
        """Nothing to undo."""
        self.restore_count += 1
