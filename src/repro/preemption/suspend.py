"""The OS-assisted suspend/resume primitive -- the paper's contribution.

Suspension delivers ``SIGTSTP`` through the heartbeat machinery; the
task's state is "implicitly saved by the operating system, and kept in
memory.  If not enough physical memory is available for running tasks
at any moment, the OS paging mechanism saves the memory allocated to
the suspended tasks in the swap area."

Resumption delivers ``SIGCONT`` once the owning TaskTracker has a free
slot; pages lost to swap fault back in as the task continues.  The
primitive enforces the Section III-A safety constraint (suspended
memory must fit in swap) before suspending.
"""

from __future__ import annotations

from repro.errors import NotPreemptibleError
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName


class SuspendResumePrimitive(PreemptionPrimitive):
    """SIGTSTP to preempt, SIGCONT to restore."""

    name = PrimitiveName.SUSPEND

    def __init__(
        self,
        cluster,
        enforce_swap_capacity: bool = True,
        enforce_suspend_cap: bool = True,
    ):
        super().__init__(cluster)
        #: static capacity compare: victim + suspended vs the swap
        #: *device size* (coarse; see :meth:`_check_swap_capacity`)
        self.enforce_swap_capacity = enforce_swap_capacity
        #: per-tracker suspended-count cap
        #: (``HadoopConfig.max_suspended_per_tracker``); kept separate
        #: so dynamically-gated setups can drop the capacity compare
        #: while retaining the historical count cap
        self.enforce_suspend_cap = enforce_suspend_cap

    def preempt(self, tip: TaskInProgress) -> None:
        """Mark the task MUST_SUSPEND; the TaskTracker stops it at the
        next heartbeat exchange."""
        self._require_running(tip)
        if self.enforce_suspend_cap:
            self._check_suspend_cap(tip)
        if self.enforce_swap_capacity:
            self._check_swap_capacity(tip)
        self.preempt_count += 1
        self.trace("suspend", tip=tip.tip_id, progress=round(tip.progress, 3))
        self.jobtracker.suspend_task(tip.tip_id)

    def restore(self, tip: TaskInProgress) -> None:
        """Mark the task MUST_RESUME; SIGCONT rides the next heartbeat
        that finds a free slot on the owning tracker."""
        self.restore_count += 1
        if tip.state is TipState.MUST_SUSPEND:
            # Restore requested before the stop even landed: the resume
            # directive will chase the suspend confirmation.
            self.cluster.sim.call_soon(self.restore, tip, label="preempt.re-restore")
            return
        if tip.state is not TipState.SUSPENDED:
            return  # completed in the meanwhile, or never suspended
        self.trace("resume", tip=tip.tip_id)
        self.jobtracker.resume_task(tip.tip_id)

    # -- safety -------------------------------------------------------------

    def _live_tracker(self, tip: TaskInProgress):
        tracker = self.cluster.trackers.get(tip.tracker or "")
        if tracker is None:
            raise NotPreemptibleError(f"{tip.tip_id} has no live tracker")
        return tracker

    def _check_suspend_cap(self, tip: TaskInProgress) -> None:
        """Per-tracker suspended-count cap
        (``mapred``-style ``max_suspended_per_tracker``)."""
        tracker = self._live_tracker(tip)
        if (
            len(tracker.suspended_attempts())
            >= tracker.config.max_suspended_per_tracker
        ):
            raise NotPreemptibleError(
                f"{tracker.host} already holds "
                f"{len(tracker.suspended_attempts())} suspended tasks "
                f"(max_suspended_per_tracker)"
            )

    def _check_swap_capacity(self, tip: TaskInProgress) -> None:
        """Section III-A: aggregate suspended memory must fit in swap.

        This is the *static* check: it compares against the swap
        device's capacity, not its live occupancy, so it neither sees
        pressure from running tasks nor admits safely on a nearly-full
        device.  Schedulers that manage the constraint dynamically use
        the swap-aware gate
        (:class:`repro.preemption.admission.SuspendAdmissionGate`) and
        build this primitive with ``enforce_swap_capacity=False``.
        """
        tracker = self._live_tracker(tip)
        attempt = self.attempt_of(tip)
        if attempt is None:
            raise NotPreemptibleError(f"{tip.tip_id} has no live attempt")
        vmm = tracker.kernel.vmm
        suspended_bytes = sum(
            a.resident_bytes() + a.current_swapped_bytes()
            for a in tracker.suspended_attempts()
        )
        need = attempt.resident_bytes() + suspended_bytes
        if need > vmm.swap.capacity:
            raise NotPreemptibleError(
                f"suspending {tip.tip_id} could need {need} bytes of swap "
                f"but only {vmm.swap.capacity} are configured"
            )
