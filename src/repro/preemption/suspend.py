"""The OS-assisted suspend/resume primitive -- the paper's contribution.

Suspension delivers ``SIGTSTP`` through the heartbeat machinery; the
task's state is "implicitly saved by the operating system, and kept in
memory.  If not enough physical memory is available for running tasks
at any moment, the OS paging mechanism saves the memory allocated to
the suspended tasks in the swap area."

Resumption delivers ``SIGCONT`` once the owning TaskTracker has a free
slot; pages lost to swap fault back in as the task continues.  The
primitive enforces the Section III-A safety constraint (suspended
memory must fit in swap) before suspending.
"""

from __future__ import annotations

from repro.errors import NotPreemptibleError
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName


class SuspendResumePrimitive(PreemptionPrimitive):
    """SIGTSTP to preempt, SIGCONT to restore."""

    name = PrimitiveName.SUSPEND

    def __init__(self, cluster, enforce_swap_capacity: bool = True):
        super().__init__(cluster)
        self.enforce_swap_capacity = enforce_swap_capacity

    def preempt(self, tip: TaskInProgress) -> None:
        """Mark the task MUST_SUSPEND; the TaskTracker stops it at the
        next heartbeat exchange."""
        self._require_running(tip)
        if self.enforce_swap_capacity:
            self._check_swap_capacity(tip)
        self.preempt_count += 1
        self.trace("suspend", tip=tip.tip_id, progress=round(tip.progress, 3))
        self.jobtracker.suspend_task(tip.tip_id)

    def restore(self, tip: TaskInProgress) -> None:
        """Mark the task MUST_RESUME; SIGCONT rides the next heartbeat
        that finds a free slot on the owning tracker."""
        self.restore_count += 1
        if tip.state is TipState.MUST_SUSPEND:
            # Restore requested before the stop even landed: the resume
            # directive will chase the suspend confirmation.
            self.cluster.sim.call_soon(self.restore, tip, label="preempt.re-restore")
            return
        if tip.state is not TipState.SUSPENDED:
            return  # completed in the meanwhile, or never suspended
        self.trace("resume", tip=tip.tip_id)
        self.jobtracker.resume_task(tip.tip_id)

    # -- safety -------------------------------------------------------------

    def _check_swap_capacity(self, tip: TaskInProgress) -> None:
        """Section III-A: aggregate suspended memory must fit in swap,
        and the per-tracker suspended count is capped by config."""
        tracker = self.cluster.trackers.get(tip.tracker or "")
        if tracker is None:
            raise NotPreemptibleError(f"{tip.tip_id} has no live tracker")
        if (
            len(tracker.suspended_attempts())
            >= tracker.config.max_suspended_per_tracker
        ):
            raise NotPreemptibleError(
                f"{tracker.host} already holds "
                f"{len(tracker.suspended_attempts())} suspended tasks "
                f"(max_suspended_per_tracker)"
            )
        attempt = self.attempt_of(tip)
        if attempt is None:
            raise NotPreemptibleError(f"{tip.tip_id} has no live attempt")
        vmm = tracker.kernel.vmm
        suspended_bytes = sum(
            a.resident_bytes() + a.current_swapped_bytes()
            for a in tracker.suspended_attempts()
        )
        need = attempt.resident_bytes() + suspended_bytes
        if need > vmm.swap.capacity:
            raise NotPreemptibleError(
                f"suspending {tip.tip_id} could need {need} bytes of swap "
                f"but only {vmm.swap.capacity} are configured"
            )
