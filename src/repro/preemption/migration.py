"""CRIU-style non-local resume (the paper's future-work sketch).

"As a future improvement, the authors suggest moving the checkpoints
used to mark task state and reduce inputs over the network; a similar
approach could be taken also in our case, using process migration
facilities such as CRIU.  However, extreme care should be taken ...
since the cost of moving non-local inputs can be very large."

:class:`MigrationPrimitive` implements that sketch on the simulator:

1. suspend the task with the normal OS-assisted primitive;
2. once the stop is confirmed, dump the process image (resident +
   swapped bytes) and ship it to the target node at the configured
   network bandwidth;
3. kill the source attempt and reschedule the task with a spec
   transformed to (a) skip the work already done and (b) read the
   staged image back before continuing -- the CRIU restore.

The cost model makes the paper's warning quantitative: migrating a
memory-hungry task pays image-over-network once and image-from-disk
once, which the tests compare against a plain local resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ResumeLocalityError, TaskStateError
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.preemption.base import PreemptionPrimitive, PrimitiveName
from repro.preemption.suspend import SuspendResumePrimitive
from repro.units import MB
from repro.workloads.jobspec import TaskSpec


@dataclass
class MigrationRecord:
    """One in-flight or completed migration."""

    tip_id: str
    image_bytes: int
    progress: float
    started_at: float
    transfer_seconds: float
    completed: bool = False


class MigrationPrimitive(PreemptionPrimitive):
    """Suspend, dump, ship, restore-elsewhere."""

    name = PrimitiveName.SUSPEND  # same wire-level mechanism as suspend

    def __init__(
        self,
        cluster,
        network_bandwidth: float = 110 * MB,
        dump_overhead: float = 1.0,
    ):
        super().__init__(cluster)
        if network_bandwidth <= 0:
            raise ResumeLocalityError("network bandwidth must be positive")
        self.network_bandwidth = network_bandwidth
        self.dump_overhead = dump_overhead
        self._suspend = SuspendResumePrimitive(cluster)
        self.migrations: Dict[str, MigrationRecord] = {}
        cluster.jobtracker.spec_transformers.append(self._transform_spec)

    # -- the PreemptionPrimitive surface ----------------------------------------

    def preempt(self, tip: TaskInProgress) -> None:
        """Plain OS-assisted suspension (migration happens on demand)."""
        self._suspend.preempt(tip)
        self.preempt_count += 1

    def restore(self, tip: TaskInProgress) -> None:
        """Plain local resume when no migration was requested."""
        self._suspend.restore(tip)
        self.restore_count += 1

    # -- migration ------------------------------------------------------------------

    def migrate(self, tip: TaskInProgress) -> MigrationRecord:
        """Move a SUSPENDED task's image off its node and requeue it.

        The task becomes schedulable anywhere once the transfer
        completes; its next attempt fast-forwards through a restore
        phase instead of recomputing.
        """
        if tip.state is not TipState.SUSPENDED:
            raise TaskStateError(
                f"{tip.tip_id} is {tip.state.value}; only SUSPENDED tasks migrate"
            )
        attempt = self.attempt_of(tip)
        if attempt is None or attempt.process is None:
            raise TaskStateError(f"{tip.tip_id} has no live suspended attempt")
        image = attempt.process.image
        image_bytes = image.resident + image.swapped
        transfer = self.dump_overhead + image_bytes / self.network_bandwidth
        record = MigrationRecord(
            tip_id=tip.tip_id,
            image_bytes=image_bytes,
            progress=attempt.progress(),
            started_at=self.cluster.sim.now,
            transfer_seconds=transfer,
        )
        self.migrations[tip.tip_id] = record
        self.trace(
            "migrate-start",
            tip=tip.tip_id,
            image=image_bytes,
            transfer=round(transfer, 2),
        )
        self.cluster.sim.schedule(
            transfer, self._finish_transfer, tip, record,
            label=f"migrate.ship:{tip.tip_id}",
        )
        return record

    def _finish_transfer(self, tip: TaskInProgress, record: MigrationRecord) -> None:
        record.completed = True
        if tip.state is not TipState.SUSPENDED:
            # Task was resumed/killed while the image was in flight.
            self.migrations.pop(tip.tip_id, None)
            return
        self.trace("migrate-shipped", tip=tip.tip_id)
        try:
            # Kill the (stopped) source attempt; the TIP requeues and
            # any tracker may take it.
            self.cluster.jobtracker.kill_task(tip.tip_id)
        except TaskStateError:  # pragma: no cover - race with completion
            self.migrations.pop(tip.tip_id, None)

    # -- restore-side spec rewriting ---------------------------------------------------

    def _transform_spec(self, tip: TaskInProgress, spec: TaskSpec) -> TaskSpec:
        record = self.migrations.get(tip.tip_id)
        if record is None or not record.completed:
            return spec
        import dataclasses

        self.migrations.pop(tip.tip_id, None)
        remaining = max(0, int(spec.input_bytes * (1.0 - record.progress)))
        self.trace(
            "migrate-restore",
            tip=tip.tip_id,
            from_progress=round(record.progress, 3),
        )
        return dataclasses.replace(
            spec,
            input_bytes=remaining,
            # CRIU restore: the staged image is read back locally.
            resume_read_bytes=record.image_bytes,
        )

    def stats(self) -> Dict[str, float]:
        """Aggregate migration accounting."""
        return {
            "in_flight": sum(1 for r in self.migrations.values() if not r.completed),
            "preempts": self.preempt_count,
        }
