"""E1 / Figure 1: task execution schedules for the three primitives."""

from benchmarks.conftest import run_and_report
from repro.experiments.fig1_schedules import run_fig1


def bench_fig1_schedules(benchmark):
    """Regenerate Figure 1: one traced run per primitive at r=50%."""
    report = run_and_report(
        benchmark, run_fig1, "Figure 1: task execution schedules", plots=False
    )
    charts = report.extras["charts"]
    assert set(charts) == {"wait", "kill", "suspend"}
    # Suspend shows a pause ('.'), kill shows a second attempt row.
    assert "." in charts["suspend"]
    assert charts["kill"].count("-a1") >= 1
