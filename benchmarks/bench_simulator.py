"""Micro-benchmarks of the simulator itself.

Not a paper figure: these track the engine's own performance (event
throughput, suspension round-trip cost, end-to-end microbenchmark
latency) so regressions in the substrate are visible.
"""

from repro.experiments.harness import TwoJobHarness
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.signals import Signal
from repro.osmodel.work import CpuWorkItem, WorkEngine, WorkPlan
from repro.sim.engine import Simulation
from repro.units import GB, MB


def bench_event_loop_throughput(benchmark):
    """Raw engine: schedule and fire 20k chained events."""

    def run():
        sim = Simulation()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    result = benchmark(run)
    assert result == 20_000


def bench_cancellation_heavy(benchmark):
    """The cancellation-heavy pattern: 50k schedules, 80% cancelled,
    ``pending_events`` polled throughout.

    Before the cancelled-event counter this was quadratic (every poll
    scanned the whole heap) and the dead handles lingered until popped;
    with the counter plus lazy compaction both the polls and the final
    drain are cheap.
    """

    def run():
        sim = Simulation()
        handles = []
        polled = 0
        for i in range(50_000):
            handles.append(sim.schedule(float(i % 100) + 1.0, lambda: None))
            if i % 5:
                handles[-1].cancel()
            if i % 50 == 0:
                polled += sim.pending_events
        sim.run()
        assert sim.pending_events == 0
        return sim.events_fired

    result = benchmark(run)
    assert result == 10_000


def bench_suspend_resume_round_trip(benchmark):
    """1000 suspend/resume cycles against one CPU-bound process."""

    def run():
        kernel = NodeKernel(
            Simulation(seed=1),
            NodeConfig(hostname="bench", os_reserved_bytes=0),
        )
        proc = kernel.spawn("p")
        WorkEngine(proc, WorkPlan([CpuWorkItem(1e9, weight=1.0)]))
        proc.engine.start()
        for i in range(1000):
            kernel.signal(proc.pid, Signal.SIGSTOP)
            kernel.signal(proc.pid, Signal.SIGCONT)
        kernel.sim.run(until=kernel.sim.now + 1.0)
        return proc.stopped_seconds

    benchmark(run)


def bench_two_job_simulation(benchmark):
    """One full light-weight microbenchmark run (the unit of Figure 2)."""

    def run():
        harness = TwoJobHarness("suspend", 0.5, runs=1)
        return harness.run_once(seed=99)

    result = benchmark(run)
    assert result.sojourn_th > 0


def bench_heavy_two_job_simulation(benchmark):
    """One worst-case run with 2 GB footprints (the unit of Figure 3)."""

    def run():
        harness = TwoJobHarness("suspend", 0.5, heavy=True, runs=1)
        return harness.run_once(seed=99)

    result = benchmark(run)
    assert result.tl_paged_bytes > 0


def bench_resource_contention_churn(benchmark):
    """The virtual-time core's headline pattern: one shared resource,
    hundreds of concurrent claims, constant pause/resume/speed churn.

    The eager model cancelled and re-armed every claim's completion
    event on every state change (O(active claims) each); the
    virtual-time model does O(log n) heap work and moves one armed
    event.  Event counters are asserted so the bench doubles as a
    regression tripwire for the O(1)-engine-traffic contract.
    """

    def run():
        sim = Simulation()
        from repro.osmodel.resources import RateResource

        res = RateResource(sim, capacity=100.0)
        claims = [res.submit(1e8 + i, lambda: None) for i in range(400)]
        for cycle in range(1000):
            victim = claims[(cycle * 37) % len(claims)]
            res.pause(victim)
            res.activate(victim)
            if cycle % 50 == 0:
                res.set_speed_factor(0.5 if cycle % 100 == 0 else 1.0)
        # One armed event serves all 400 claims.
        assert sim.pending_events == 1
        return sim.events_scheduled + sim.reschedules

    engine_ops = benchmark(run)
    # ~4 engine ops per churn cycle, NOT ~400: the O(active claims)
    # blow-up would push this into the hundreds of thousands.
    assert engine_ops < 10_000


def bench_hot_class_allocation(benchmark):
    """Allocation throughput of the __slots__-bearing hot classes.

    Scale replays construct one WorkPlan (4-6 WorkItems), one Claim
    and a handful of EventHandles per task attempt; this bench tracks
    the construction cost (and, implicitly, the footprint win) of the
    slotted versions.
    """
    from repro.osmodel.work import (
        CpuWorkItem,
        DiskWriteItem,
        MemAllocItem,
        MemTouchItem,
        SleepItem,
        WorkPlan,
    )
    from repro.units import MB

    def run():
        plans = [
            WorkPlan(
                [
                    SleepItem(1.0, label="jvm-start"),
                    MemAllocItem(64 * MB),
                    CpuWorkItem(30.0, weight=1.0, reads_bytes=64 * MB),
                    MemTouchItem(),
                    DiskWriteItem(16 * MB),
                ]
            )
            for _ in range(2_000)
        ]
        return len(plans)

    result = benchmark(run)
    assert result == 2_000
