"""E7: the suspend primitive inside HFSP (size-based scheduling).

The conclusion's "preliminary results": with suspension, HFSP gives
short jobs kill-like sojourn times without kill's redundant work.
"""

from benchmarks.conftest import run_and_report
from repro.experiments.hfsp_study import run_hfsp_study


def bench_hfsp(benchmark, paper_scale):
    """Run the HFSP primitive comparison."""
    report = run_and_report(
        benchmark, run_hfsp_study, "E7: preemption primitives inside HFSP",
        **paper_scale,
    )
    metrics = report.extras["metrics"]

    def mean(primitive, key):
        values = metrics[primitive][key]
        return sum(values) / len(values)

    # Short jobs: suspension serves them about as fast as kill, far
    # faster than waiting.
    assert mean("suspend", "short_sojourn") < mean("wait", "short_sojourn") * 0.5
    assert mean("suspend", "short_sojourn") < mean("kill", "short_sojourn") * 1.3
    # And the long job pays less than under kill (no redundant work).
    assert mean("suspend", "long_sojourn") < mean("kill", "long_sojourn")
    assert mean("suspend", "makespan") < mean("kill", "makespan")
