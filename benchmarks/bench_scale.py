"""E9: cluster-at-scale SWIM replay.

The smoke bench keeps CI honest on the new subsystem's runtime and
headline claims; the slow bench regenerates the full 25/100/400
cluster-size sweep (the scale analogue of the paper's tables) and is
excluded from the default run via the ``slow`` mark.
"""

import pytest

from benchmarks.conftest import run_and_report
from repro.experiments.runner import default_workers
from repro.experiments.scale_study import run_scale_study


def _mean(metrics, scenario, size, primitive, key):
    values = metrics[scenario][size][primitive][key]
    return sum(values) / len(values)


def bench_scale_smoke(benchmark):
    """A small replay cell grid: 10 trackers, two scenarios."""
    report = run_and_report(
        benchmark,
        run_scale_study,
        "E9 (smoke): SWIM replay on 10 trackers",
        plots=False,
        runs=1,
        cluster_sizes=[10],
        scenarios=["baseline", "burst"],
        primitives=["wait", "kill", "suspend"],
        num_jobs=10,
    )
    metrics = report.extras["metrics"]
    for scenario in report.extras["scenarios"]:
        for primitive in report.extras["primitives"]:
            # Every cell drained its whole workload.
            values = metrics[scenario][10][primitive]["mean_sojourn"]
            assert all(v > 0 for v in values)


@pytest.mark.slow
def bench_scale_paper_axes(benchmark):
    """The full sweep: 25/100/400 trackers x 4 scenarios x 3 primitives."""
    report = run_and_report(
        benchmark,
        run_scale_study,
        "E9: SWIM replay across cluster sizes",
        plots=False,
        runs=1,
        workers=default_workers(),
    )
    metrics = report.extras["metrics"]
    sizes = report.extras["cluster_sizes"]
    for scenario in report.extras["scenarios"]:
        for size in sizes:
            # Suspension never wastes more work than killing: the whole
            # point of the primitive, now asserted at every scale.
            assert _mean(metrics, scenario, size, "suspend", "wasted") <= _mean(
                metrics, scenario, size, "kill", "wasted"
            )
