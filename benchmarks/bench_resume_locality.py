"""Resume locality (Section V-A) and the CRIU-style extension.

Compares three ways of getting a suspended task going again when its
node is contended:

* **local resume** after delay scheduling (the paper's proposal);
* **restart from scratch** elsewhere (the paper's fallback: "the
  suspend is effectively analogous to a delayed kill");
* **migrate** the process image CRIU-style (the paper's future work).
"""

from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.states import TipState
from repro.preemption.migration import MigrationPrimitive
from repro.schedulers.dummy import DummyScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskSpec


def _cluster(seed=21):
    from repro.experiments.params import paper_hadoop_config, paper_node_config

    return HadoopCluster(
        num_nodes=2,
        node_config=paper_node_config(),
        hadoop_config=paper_hadoop_config(),
        scheduler=DummyScheduler(),
        seed=seed,
        trace=False,
    )


def _job(name="victim"):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(
                input_bytes=512 * MB,
                parse_rate=7 * MB,
                footprint_bytes=512 * MB,
                profile=MemoryProfile.STATEFUL,
            )
        ],
    )


def _blocker(name="blocker", seconds_of_work=60.0):
    return JobSpec(
        name=name,
        priority=10,
        tasks=[TaskSpec(input_bytes=int(seconds_of_work * 7 * MB), parse_rate=7 * MB)],
    )


def _run(mode: str) -> float:
    """Returns the victim job's sojourn time under one strategy.

    Scenario: a filler job occupies node00 (ending mid-experiment); the
    victim runs on node01 until a long high-priority blocker evicts it
    there.  The suspended image sits on busy node01 while node00 goes
    idle -- exactly the resume-locality bind of Section V-A.
    """
    cluster = _cluster()
    primitive = MigrationPrimitive(cluster, network_bandwidth=110 * MB)
    # Filler: ~50 s of work, keeps node00 busy while the blocker lands.
    cluster.submit_job(_blocker(name="filler", seconds_of_work=50.0))
    victim = cluster.submit_job(_job())
    tip = victim.tips[0]

    def act_on_suspended():
        if tip.state is not TipState.SUSPENDED:
            cluster.sim.schedule(1.0, act_on_suspended)
            return
        if mode == "restart":
            cluster.jobtracker.kill_task(tip.tip_id)
        elif mode == "migrate":
            primitive.migrate(tip)
        elif mode == "local":
            primitive.restore(tip)  # waits for the blocker to finish

    def preempt():
        # The blocker must take the victim's node: node00 is still
        # running the filler at this point.  The resume decision comes
        # 8 s later, once the blocker owns the slot.
        cluster.jobtracker.submit_job(_blocker(name="blocker", seconds_of_work=60.0))
        primitive.preempt(tip)
        cluster.sim.schedule(8.0, act_on_suspended)

    cluster.when_job_progress("victim", 0.5, preempt)
    cluster.run_until_jobs_complete(timeout=36_000)
    return victim.sojourn_time


def bench_resume_locality(benchmark):
    """Local resume vs restart-from-scratch vs CRIU-style migration."""
    holder = {}

    def run():
        holder["results"] = {
            mode: _run(mode) for mode in ("local", "restart", "migrate")
        }
        return holder["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = holder["results"]
    print()
    print("##### resume locality: victim sojourn by strategy #####")
    for mode, sojourn in results.items():
        print(f"{mode:>8}: {sojourn:7.1f} s")
    # Migration preserves progress (beats restart-from-scratch) and
    # exploits the idle node (beats waiting for a local slot).
    assert results["migrate"] < results["restart"]
    assert results["migrate"] < results["local"]
    # Both fallbacks remain correct, just slower.
    assert all(value > 0 for value in results.values())
