"""E8: preemption primitives under injected faults.

Runs the fault grid (node-crash, straggler, transient-failure) x
(kill, wait, suspend) and checks the recovered-work claims:

* only kill pays a *preemption-caused* waste: suspend parks its
  victims and wait never touches them, so their preemption-kill
  ledger entry is zero in every scenario;
* outside the straggler scenario, suspend's total waste never exceeds
  kill's -- kill discards its victims' progress on top of whatever
  the fault destroys.

(No blanket total-waste ordering is asserted under the straggler:
with speculative execution on, every primitive accrues emergent
speculation-loser waste from backups racing the slow node, and its
magnitude depends on which primaries lose.  That trade-off is part of
what the study reports.)
"""

from benchmarks.conftest import run_and_report
from repro.experiments.faults_study import run_faults_study


def _mean(metrics, scenario, primitive, key):
    values = metrics[scenario][primitive][key]
    return sum(values) / len(values)


def bench_faults(benchmark, paper_scale):
    """Run the fault study grid."""
    report = run_and_report(
        benchmark,
        run_faults_study,
        "E8: fault scenarios x preemption primitives",
        **paper_scale,
    )
    metrics = report.extras["metrics"]
    scenarios = report.extras["scenarios"]

    for scenario in scenarios:
        # Only the kill primitive discards work *by choice*.
        assert _mean(metrics, scenario, "kill", "wasted_preemption") > 0.0
        assert _mean(metrics, scenario, "suspend", "wasted_preemption") == 0.0
        assert _mean(metrics, scenario, "wait", "wasted_preemption") == 0.0
        if scenario == "straggler":
            # Total waste under a straggler is dominated by emergent
            # speculation-loser dynamics on the slow node (whose
            # long-running primaries lose big races), so no total-waste
            # ordering between primitives is guaranteed there.
            continue
        # Elsewhere kill pays preemption waste on top of fault damage.
        assert _mean(metrics, scenario, "suspend", "wasted") <= _mean(
            metrics, scenario, "kill", "wasted"
        )

    # Transient failures: suspend preserves victim progress, so the
    # urgent job's sojourn beats waiting for slots to drain.
    assert _mean(metrics, "transient-failure", "suspend", "sojourn") < _mean(
        metrics, "transient-failure", "wait", "sojourn"
    )
