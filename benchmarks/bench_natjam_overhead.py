"""E5: Natjam-style checkpointing vs the OS-assisted primitive.

The paper: "the authors of Natjam measured an overhead of around 7% in
terms of makespan, in similar experimental settings as ours.  Our
findings suggest that the overhead in our case is negligible."
"""

from benchmarks.conftest import run_and_report
from repro.experiments.natjam_overhead import run_natjam_overhead


def bench_natjam_overhead(benchmark, paper_scale):
    """Regenerate the Natjam comparison."""
    report = run_and_report(
        benchmark,
        run_natjam_overhead,
        "E5: checkpointing (Natjam-style) vs OS-assisted suspension",
        **paper_scale,
    )
    natjam = report.extras["mean_overhead_natjam_pct"]
    suspend = report.extras["mean_overhead_suspend_pct"]
    # Natjam lands in the ~7% ballpark; the OS-assisted primitive's
    # overhead is negligible.
    assert 3.0 < natjam < 12.0
    assert suspend < 1.5
    assert natjam > suspend + 2.0
