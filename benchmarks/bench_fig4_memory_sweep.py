"""E4 / Figure 4: paged bytes and overheads vs th's memory footprint.

tl allocates 2.5 GB; th sweeps 0..2.5 GB.  The bench prints the swap
volume curve and both overhead curves and asserts the paper's shape
claims: monotone swap growth that starts super-linear, and overheads
roughly linear in the swapped volume.
"""

from benchmarks.conftest import run_and_report
from repro.experiments.fig4_memory_sweep import run_fig4


def bench_fig4_memory_sweep(benchmark, paper_scale):
    """Regenerate Figure 4."""
    report = run_and_report(
        benchmark,
        run_fig4,
        "Figure 4: overheads when varying memory usage",
        **paper_scale,
    )
    swap = report.find_series("fig4-paged-bytes").curves["swap"]
    overheads = report.find_series("fig4-overheads")
    sojourn_ovh = overheads.curves["th sojourn time"]
    makespan_ovh = overheads.curves["makespan"]

    # Swap volume: zero without pressure, then monotonically rising.
    assert swap[0] < 1.0
    assert all(a <= b + 1.0 for a, b in zip(swap, swap[1:]))
    assert swap[-1] > 1000.0  # >1 GB at the 2.5 GB point (paper: ~1.6 GB)

    # Overheads track the swap volume and are clearly visible at the top.
    assert sojourn_ovh[-1] > 5.0
    assert makespan_ovh[-1] > 10.0
    assert makespan_ovh[-1] > makespan_ovh[1]

    # Rough linearity of overhead vs paged bytes at the two largest points.
    ratio_hi = makespan_ovh[-1] / swap[-1]
    ratio_mid = makespan_ovh[-2] / swap[-2]
    assert 0.4 < ratio_hi / ratio_mid < 2.5
