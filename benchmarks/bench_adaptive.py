"""Section V-A advisor validation bench.

Runs all three primitives across the progress axis, lets the
:class:`~repro.preemption.costs.PreemptionAdvisor` pick per point, and
checks its regret against the simulated optimum.
"""

from benchmarks.conftest import run_and_report
from repro.experiments.adaptive_study import run_adaptive_study


def bench_adaptive_advisor(benchmark, paper_scale):
    """Advisor picks vs per-point optimum."""
    report = run_and_report(
        benchmark,
        run_adaptive_study,
        "Advisor: per-victim primitive selection (Section V-A)",
        **paper_scale,
    )
    picks = report.extras["picks"]
    # The paper's endpoint guidance is encoded and applied:
    assert picks[0] == "kill"  # freshly started victim
    assert picks[-1] == "wait"  # nearly-done victim
    assert all(p == "suspend" for p in picks[1:-1])  # the wide middle
    # And following the advisor stays close to the per-point optimum.
    assert report.extras["regret"] < 15.0
    # In the middle of the axis, suspension is strictly optimal.
    series = report.find_series("adaptive-costs")
    mid = series.x_values[len(series.x_values) // 2]
    assert series.point("suspend", mid) < series.point("kill", mid)
    assert series.point("suspend", mid) < series.point("wait", mid)
