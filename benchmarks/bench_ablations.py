"""Ablation benches for the design choices DESIGN.md calls out.

* swappiness (Section III-A's best-practice configuration),
* garbage-collector heap behaviour (Section V-B).
"""

from benchmarks.conftest import run_and_report
from repro.experiments.gc_study import run_gc_study
from repro.experiments.swappiness_study import run_swappiness_study


def bench_swappiness_ablation(benchmark, paper_scale):
    """Swap volume vs the swappiness knob (paper uses 0)."""
    report = run_and_report(
        benchmark,
        run_swappiness_study,
        "Ablation: swappiness (Section III-A best practice)",
        **paper_scale,
    )
    paged = report.extras["paged_mb"]
    values = report.extras["values"]
    # swappiness 0 (the paper's setting) pages the least; the curve is
    # monotone in the knob.
    assert paged[0] == min(paged)
    assert paged[-1] > paged[0] * 1.5
    assert values[0] == 0


def bench_gc_ablation(benchmark, paper_scale):
    """Hoarding vs releasing collectors under suspension (Section V-B)."""
    report = run_and_report(
        benchmark,
        run_gc_study,
        "Ablation: garbage collector heap behaviour (Section V-B)",
        **paper_scale,
    )
    paged = report.extras["paged_mb"]
    makespans = report.extras["makespans"]
    # A releasing collector (G1-style) keeps the suspended footprint
    # smaller: less swap, smaller makespan.
    assert paged["release"] < paged["hoard"]
    assert makespans["release"] < makespans["hoard"]
