"""E10: network-contention preemption study (flow-routed shuffle).

The smoke bench runs a small oversubscribed-fabric cell grid and
asserts the subsystem's headline claim -- suspension wastes strictly
less network traffic than killing; the slow bench regenerates the full
25/100 sweep.
"""

import pytest

from benchmarks.conftest import run_and_report
from repro.experiments.runner import default_workers
from repro.experiments.shuffle_study import run_shuffle_study


def bench_shuffle_smoke(benchmark):
    """A small fabric cell grid: 6 trackers, three primitives."""
    report = run_and_report(
        benchmark,
        run_shuffle_study,
        "E10 (smoke): flow-routed shuffle on 6 trackers",
        plots=False,
        runs=1,
        cluster_sizes=[6],
        num_jobs=14,
    )
    metrics = report.extras["metrics"]
    for primitive in report.extras["primitives"]:
        assert metrics[6][primitive]["mean_sojourn"][0] > 0
        assert metrics[6][primitive]["uplink_util"][0] > 0
    # The tentpole claim, asserted on every CI run: kill recrosses the
    # oversubscribed uplinks, suspend never does.
    assert metrics[6]["kill"]["wasted_net_mb"][0] > 0
    assert metrics[6]["suspend"]["wasted_net_mb"][0] == 0


@pytest.mark.slow
def bench_shuffle_paper_axes(benchmark):
    """The full sweep: 25/100 trackers x wait/kill/suspend."""
    report = run_and_report(
        benchmark,
        run_shuffle_study,
        "E10: shuffle study across cluster sizes",
        plots=False,
        runs=1,
        workers=default_workers(),
    )
    metrics = report.extras["metrics"]
    for size in report.extras["cluster_sizes"]:
        assert (
            metrics[size]["suspend"]["wasted_net_mb"][0]
            <= metrics[size]["kill"]["wasted_net_mb"][0]
        )
