"""E3 / Figure 3: worst-case experiments with memory-hungry tasks.

Both tasks allocate 2 GB on a 4 GB node, forcing the suspended task's
pages through swap.  The paper's claims: suspend still beats wait on
sojourn and kill on makespan, but "the kill primitive achieves a
slightly lower [sojourn]" and "the wait primitive achieves slightly
smaller makespan".
"""

from benchmarks.conftest import run_and_report
from repro.experiments.fig3_worstcase import run_fig3


def bench_fig3_worstcase(benchmark, paper_scale):
    """Regenerate Figures 3a and 3b."""
    report = run_and_report(
        benchmark,
        run_fig3,
        "Figure 3: worst-case experiments (memory-hungry tasks)",
        **paper_scale,
    )
    sojourn = report.find_series("worst-case-sojourn")
    makespan = report.find_series("worst-case-makespan")
    for x in sojourn.x_values:
        # Paging overheads are visible...
        assert sojourn.point("kill", x) < sojourn.point("suspend", x)
        assert makespan.point("wait", x) < makespan.point("suspend", x)
        # ...but suspend still wins overall on both fronts.
        assert sojourn.point("suspend", x) < sojourn.point("wait", x)
        assert makespan.point("suspend", x) < makespan.point("kill", x)
    # The suspend-vs-kill sojourn gap stays marginal (paging cost, not
    # a change of regime): within 20% of kill's value.
    for x in sojourn.x_values:
        gap = sojourn.point("suspend", x) - sojourn.point("kill", x)
        assert gap < 0.2 * sojourn.point("kill", x)
