"""E2 / Figure 2: baseline sojourn time and makespan, light tasks.

Prints both series (2a: sojourn of th; 2b: makespan) over the paper's
full r-axis (10%..90%) and asserts the paper's orderings at every
point.
"""

from benchmarks.conftest import run_and_report
from repro.experiments.fig2_baseline import run_fig2


def bench_fig2_baseline(benchmark, paper_scale):
    """Regenerate Figures 2a and 2b."""
    report = run_and_report(
        benchmark,
        run_fig2,
        "Figure 2: baseline experiments (light-weight tasks)",
        **paper_scale,
    )
    sojourn = report.find_series("baseline-sojourn")
    makespan = report.find_series("baseline-makespan")
    for x in sojourn.x_values:
        # 2a: susp <= kill << wait
        assert sojourn.point("suspend", x) < sojourn.point("kill", x)
        assert sojourn.point("kill", x) < sojourn.point("wait", x)
        # 2b: susp ~= wait << kill
        assert makespan.point("kill", x) > makespan.point("wait", x)
        assert makespan.point("suspend", x) <= makespan.point("wait", x) * 1.03
    # wait's sojourn decays linearly with r; kill's makespan grows.
    assert sojourn.curves["wait"][0] > sojourn.curves["wait"][-1] + 30
    assert makespan.curves["kill"][-1] > makespan.curves["kill"][0] + 30
