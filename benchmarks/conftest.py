"""Shared plumbing for the benchmark suite.

Each ``bench_*`` function regenerates one of the paper's figures (or
an ablation) and prints the same rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
run.  ``pytest-benchmark`` times the regeneration; the printed tables
are the scientific output.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, runner, label: str, plots: bool = True, **kwargs):
    """Benchmark one experiment runner and print its report."""
    result_holder = {}

    def target():
        result_holder["report"] = runner(**kwargs)
        return result_holder["report"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    report = result_holder["report"]
    print()
    print(f"##### {label} #####")
    print(report.render(plots=plots))
    return report


@pytest.fixture
def paper_scale():
    """Axis scale used by the benches: full paper axes, fewer averaged
    runs than the paper's 20 to keep the suite snappy (the shapes are
    stable well before 20; EXPERIMENTS.md records a full 20-run pass)."""
    return {"runs": 5}
