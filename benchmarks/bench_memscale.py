"""E11: memory-oversubscribed SWIM replay (suspend admission control).

The smoke bench runs the four management regimes on a 10-tracker
swap-constrained cell and asserts the study's headline claim -- the
admission gate keeps the OOM killer idle while ungated suspension
fires it.  The slow bench regenerates the full 25/100/400 sweep and
is excluded from the default run via the ``slow`` mark.
"""

import pytest

from benchmarks.conftest import run_and_report
from repro.experiments.memscale_study import run_memscale_study
from repro.experiments.runner import default_workers


def _mean(metrics, size, mode, key):
    values = metrics[size][mode][key]
    return sum(values) / len(values)


def bench_memscale_smoke(benchmark):
    """25 swap-constrained trackers, all four regimes."""
    report = run_and_report(
        benchmark,
        run_memscale_study,
        "E11 (smoke): memory-oversubscribed replay on 25 trackers",
        plots=False,
        runs=1,
        cluster_sizes=[25],
        num_jobs=25,
    )
    metrics = report.extras["metrics"]
    # The constraint is actively managed: gated and both non-suspend
    # regimes never OOM; raw SIGTSTP stacking does.
    for safe in ("kill", "wait", "suspend-gated"):
        assert _mean(metrics, 25, safe, "oom_kills") == 0.0
    assert _mean(metrics, 25, "suspend-ungated", "oom_kills") > 0.0


@pytest.mark.slow
def bench_memscale_paper_axes(benchmark):
    """The full sweep: 25/100/400 trackers x 4 regimes."""
    report = run_and_report(
        benchmark,
        run_memscale_study,
        "E11: memory-oversubscribed replay across cluster sizes",
        plots=False,
        runs=1,
        workers=default_workers(),
    )
    metrics = report.extras["metrics"]
    for size in report.extras["cluster_sizes"]:
        assert _mean(metrics, size, "suspend-gated", "oom_kills") == 0.0
