"""E6 (ablation, Section V-A): eviction policies under suspension.

The paper suggests suspending "tasks with smaller memory footprints,
which reduces overheads"; Cho et al. suspend tasks closest to
completion.  The bench compares both (plus controls) and asserts the
memory-aware claim: smallest-memory victims produce less swap traffic
than largest-memory victims.
"""

from benchmarks.conftest import run_and_report
from repro.experiments.eviction_study import run_eviction_study


def bench_eviction_policies(benchmark, paper_scale):
    """Run the eviction-policy study."""
    report = run_and_report(
        benchmark,
        run_eviction_study,
        "E6: eviction-policy study",
        **paper_scale,
    )
    metrics = report.extras["metrics"]

    def mean(policy, key):
        values = metrics[policy][key]
        return sum(values) / len(values)

    # The paper's suggestion: small-footprint victims swap less.
    assert mean("smallest-memory", "swapped_mb") < mean("largest-memory", "swapped_mb")
    # Evicting nearly-done tasks keeps the overall makespan tighter
    # than evicting the longest-remaining tasks.
    assert mean("closest-to-completion", "makespan") < mean(
        "furthest-from-completion", "makespan"
    )
    # The urgent job's sojourn is policy-insensitive (it gets its slots
    # either way): within 25% across policies.
    sojourns = [mean(p, "sojourn") for p in report.extras["policies"]]
    assert max(sojourns) < min(sojourns) * 1.25
