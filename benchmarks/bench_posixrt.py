"""E8: the real-process prototype at laptop scale.

Replays the two-job microbenchmark with genuine SIGTSTP / SIGCONT /
SIGKILL on live worker processes and prints the wall-clock metrics --
the signal-level sanity check behind Figures 2a/2b.
"""

import sys

import pytest

from repro.posixrt.runner import MiniExperiment

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="requires Linux signals and /proc",
)


def bench_posixrt_two_job(benchmark):
    """wait vs kill vs suspend on real processes (3 MB tasks)."""
    holder = {}

    def run():
        experiment = MiniExperiment(
            input_mb=3, rate_mb_per_sec=12.0, progress_at_launch=0.5
        )
        holder["rows"] = experiment.compare(("wait", "kill", "suspend"))
        return holder["rows"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    print()
    print("##### E8: real-process prototype (wall clock) #####")
    print(f"{'primitive':>10} | {'th sojourn (s)':>14} | {'makespan (s)':>12}")
    for name, outcome in rows.items():
        print(
            f"{name:>10} | {outcome.sojourn_th:14.2f} | {outcome.makespan:12.2f}"
        )
    assert rows["suspend"].tl_was_stopped
    assert rows["kill"].tl_restarted
    assert rows["suspend"].sojourn_th < rows["wait"].sojourn_th
    assert rows["kill"].makespan > rows["suspend"].makespan
