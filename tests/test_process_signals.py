"""Process model and POSIX signal semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidSignalError, NoSuchProcessError, ProcessStateError
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.process import ExitReason, ProcessState
from repro.osmodel.signals import Signal
from repro.sim.engine import Simulation
from repro.units import GB, MB


def make_kernel(handler_latency: float = 0.1) -> NodeKernel:
    return NodeKernel(
        Simulation(seed=3),
        NodeConfig(hostname="sigtest", sigtstp_handler_latency=handler_latency),
    )


class TestSignalEnum:
    def test_catchability(self):
        assert Signal.SIGTSTP.catchable
        assert Signal.SIGTERM.catchable
        assert Signal.SIGCONT.catchable
        assert not Signal.SIGKILL.catchable
        assert not Signal.SIGSTOP.catchable

    def test_dispositions(self):
        assert Signal.SIGTSTP.stops and Signal.SIGSTOP.stops
        assert Signal.SIGKILL.terminates and Signal.SIGTERM.terminates
        assert not Signal.SIGCONT.stops and not Signal.SIGCONT.terminates

    def test_cannot_install_handler_for_sigkill(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        with pytest.raises(InvalidSignalError):
            proc.dispositions.install(Signal.SIGKILL, lambda p: None)
        with pytest.raises(InvalidSignalError):
            proc.dispositions.install(Signal.SIGSTOP, lambda p: None)


class TestStopAndContinue:
    def test_sigstop_immediate(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGSTOP)
        assert proc.state is ProcessState.STOPPED

    def test_sigtstp_default_is_immediate(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGTSTP)
        assert proc.state is ProcessState.STOPPED

    def test_sigtstp_with_handler_pays_latency(self):
        kernel = make_kernel(handler_latency=0.25)
        proc = kernel.spawn("p")
        proc.dispositions.install(Signal.SIGTSTP, lambda p: None)
        kernel.signal(proc.pid, Signal.SIGTSTP)
        assert proc.state is ProcessState.RUNNING  # handler still draining
        kernel.sim.run()
        assert proc.state is ProcessState.STOPPED
        assert proc.stopped_at == pytest.approx(0.25)

    def test_sigcont_resumes_and_tracks_stopped_time(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGSTOP)
        kernel.sim.schedule(5.0, kernel.signal, proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        assert proc.state is ProcessState.RUNNING
        assert proc.stopped_seconds == pytest.approx(5.0)

    def test_sigcont_races_tstp_handler(self):
        # SIGCONT during the handler window cancels the pending stop.
        kernel = make_kernel(handler_latency=0.5)
        proc = kernel.spawn("p")
        proc.dispositions.install(Signal.SIGTSTP, lambda p: None)
        kernel.signal(proc.pid, Signal.SIGTSTP)
        kernel.sim.schedule(0.1, kernel.signal, proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        assert proc.state is ProcessState.RUNNING
        assert proc.stopped_seconds == 0.0

    def test_double_stop_is_idempotent(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGSTOP)
        kernel.signal(proc.pid, Signal.SIGSTOP)
        assert proc.state is ProcessState.STOPPED

    def test_cont_while_running_is_noop(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGCONT)
        assert proc.state is ProcessState.RUNNING

    def test_stop_callbacks_fire(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        events = []
        proc.on_stop(lambda p: events.append("stop"))
        proc.on_resume(lambda p: events.append("resume"))
        kernel.signal(proc.pid, Signal.SIGSTOP)
        kernel.signal(proc.pid, Signal.SIGCONT)
        assert events == ["stop", "resume"]


class TestTermination:
    def test_sigkill_immediate_death(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        exits = []
        proc.on_exit(lambda p, reason: exits.append(reason))
        kernel.signal(proc.pid, Signal.SIGKILL)
        assert proc.state is ProcessState.DEAD
        assert exits == [ExitReason.KILLED]

    def test_sigterm_default_terminates(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGTERM)
        assert proc.exit_reason is ExitReason.TERMINATED

    def test_sigterm_handler_overrides(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        caught = []
        proc.dispositions.install(Signal.SIGTERM, lambda p: caught.append(p.pid))
        kernel.signal(proc.pid, Signal.SIGTERM)
        assert proc.alive
        assert caught == [proc.pid]

    def test_kill_stopped_process(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGSTOP)
        kernel.signal(proc.pid, Signal.SIGKILL)
        assert proc.state is ProcessState.DEAD

    def test_signalling_dead_process_raises(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.signal(proc.pid, Signal.SIGKILL)
        with pytest.raises(NoSuchProcessError):
            kernel.signal(proc.pid, Signal.SIGCONT)

    def test_death_frees_memory(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.charge_allocation(proc, 256 * MB)
        free_before = kernel.vmm.free_ram()
        kernel.signal(proc.pid, Signal.SIGKILL)
        assert kernel.vmm.free_ram() == free_before + 256 * MB

    def test_exit_callbacks_fire_once(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        exits = []
        proc.on_exit(lambda p, r: exits.append(r))
        kernel.signal(proc.pid, Signal.SIGKILL)
        proc._die(ExitReason.KILLED)  # second death attempt is a no-op
        assert len(exits) == 1


class TestRandomSignalSequences:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [Signal.SIGTSTP, Signal.SIGCONT, Signal.SIGSTOP, Signal.SIGKILL]
            ),
            max_size=20,
        )
    )
    def test_state_machine_never_corrupts(self, signals):
        kernel = make_kernel(handler_latency=0.0)
        proc = kernel.spawn("p")
        for sig in signals:
            if not proc.alive:
                with pytest.raises(ProcessStateError):
                    proc.deliver(sig)
                break
            kernel.signal(proc.pid, sig)
            assert proc.state in (
                ProcessState.RUNNING,
                ProcessState.STOPPED,
                ProcessState.DEAD,
            )
        kernel.sim.run()
        # Whatever happened, accounting is consistent.
        kernel.check_invariants()
