"""Swap-aware suspend admission control.

Three layers of coverage:

* unit tests of :class:`~repro.preemption.admission.SuspendAdmissionGate`
  decisions and the fallback ladder;
* the OOM-kill path the gate exists to prevent: when admission is off
  and RAM + swap exhaust, the OOM killer reaps the allocating JVM and
  the loss lands on the ``oom-kill`` ledger cause;
* the differential guarantee: suspend-gated scheduling with
  effectively infinite swap is **event-for-event identical**
  (``TraceLog.digest()``) to ungated scheduling, across seeded
  fig2/hfsp/scale cells.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.states import TipState
from repro.osmodel.process import ExitReason
from repro.preemption.admission import (
    AdmissionConfig,
    SuspendAdmissionGate,
    admit_and_preempt,
)
from repro.preemption.base import make_primitive
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec
from tests.conftest import fast_hadoop_config, small_node_config


def _cluster_with_running_task(
    footprint=256 * MB, swap_bytes=2 * GB, name="victim"
) -> HadoopCluster:
    """A one-node cluster whose single task is mid-flight with its
    footprint resident."""
    cluster = HadoopCluster(
        num_nodes=1,
        node_config=small_node_config(swap_bytes=swap_bytes),
        hadoop_config=fast_hadoop_config(),
        seed=5,
        trace=True,
    )
    cluster.submit_job(
        JobSpec(
            name=name,
            tasks=[
                TaskSpec(
                    kind=TaskKind.MAP,
                    input_bytes=64 * MB,
                    parse_rate=4 * MB,
                    footprint_bytes=footprint,
                    profile=MemoryProfile.STATEFUL,
                    name=name,
                )
            ],
        )
    )
    hit = {"done": False}
    cluster.when_job_progress(name, 0.3, lambda: hit.__setitem__("done", True))
    cluster.start()
    while not hit["done"]:
        assert cluster.sim.step()
    return cluster


def _tip_of(cluster, name):
    return cluster.job_by_name(name).tips[0]


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(reserve_bytes=-1)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(fallback=())
        with pytest.raises(ConfigurationError):
            AdmissionConfig(fallback=("suspend",))
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_suspended_per_node=-2)
        AdmissionConfig(fallback=("wait", "kill"))  # legal ladder


class TestGateDecisions:
    def test_admits_with_abundant_headroom(self):
        cluster = _cluster_with_running_task()
        gate = SuspendAdmissionGate(cluster, AdmissionConfig())
        decision = gate.evaluate(_tip_of(cluster, "victim"))
        assert decision.admitted and decision.action == "suspend"
        assert gate.stats.admitted == 1 and gate.stats.denied == 0

    def test_denies_victim_larger_than_swap_device(self):
        # 256 MB resident victim, 64 MB swap: permanently inadmissible.
        cluster = _cluster_with_running_task(swap_bytes=64 * MB)
        gate = SuspendAdmissionGate(cluster, AdmissionConfig())
        decision = gate.evaluate(_tip_of(cluster, "victim"))
        assert not decision.admitted
        assert decision.permanent
        assert decision.action == "wait"  # default ladder
        assert gate.stats.deny_reasons == {"victim-exceeds-swap": 1}

    def test_denies_when_reserve_exceeds_supply(self):
        cluster = _cluster_with_running_task()
        gate = SuspendAdmissionGate(
            cluster, AdmissionConfig(reserve_bytes=64 * GB)
        )
        decision = gate.evaluate(_tip_of(cluster, "victim"))
        assert not decision.admitted and not decision.permanent
        assert decision.action == "wait"
        assert "no-headroom" in gate.stats.deny_reasons

    def test_count_cap_denies(self):
        cluster = _cluster_with_running_task()
        gate = SuspendAdmissionGate(
            cluster, AdmissionConfig(max_suspended_per_node=0)
        )
        decision = gate.evaluate(_tip_of(cluster, "victim"))
        assert not decision.admitted
        assert "count-cap" in gate.stats.deny_reasons


class TestFallbackLadder:
    def test_permanent_denial_with_kill_ladder_kills(self):
        cluster = _cluster_with_running_task(swap_bytes=64 * MB)
        gate = SuspendAdmissionGate(
            cluster, AdmissionConfig(fallback=("wait", "kill"))
        )
        primitive = make_primitive(
            "suspend", cluster, enforce_swap_capacity=False
        )
        tip = _tip_of(cluster, "victim")
        action = gate.preempt(primitive, tip)
        # "wait" only covers transient denials; a victim that can never
        # page into this swap device falls through to the kill rung.
        assert action == "kill"
        assert tip.state is TipState.MUST_KILL
        assert gate.stats.fallback_kills == 1

    def test_transient_denial_with_kill_ladder_waits(self):
        cluster = _cluster_with_running_task()
        gate = SuspendAdmissionGate(
            cluster,
            AdmissionConfig(reserve_bytes=64 * GB, fallback=("wait", "kill")),
        )
        primitive = make_primitive(
            "suspend", cluster, enforce_swap_capacity=False
        )
        tip = _tip_of(cluster, "victim")
        assert gate.preempt(primitive, tip) == "wait"
        assert tip.state is TipState.RUNNING
        assert gate.stats.fallback_waits == 1

    def test_admit_and_preempt_without_gate_is_plain_preempt(self):
        cluster = _cluster_with_running_task()
        primitive = make_primitive("suspend", cluster)
        tip = _tip_of(cluster, "victim")
        assert admit_and_preempt(None, primitive, tip) == "suspend"
        assert tip.state is TipState.MUST_SUSPEND

    def test_kill_primitive_bypasses_gate(self):
        cluster = _cluster_with_running_task()
        gate = SuspendAdmissionGate(
            cluster, AdmissionConfig(reserve_bytes=64 * GB)
        )
        primitive = make_primitive("kill", cluster)
        tip = _tip_of(cluster, "victim")
        assert admit_and_preempt(gate, primitive, tip) == "kill"
        assert tip.state is TipState.MUST_KILL
        assert gate.stats.denied == 0  # never consulted


class TestOomKillPath:
    def _oom_cluster(self) -> HadoopCluster:
        # 1 GB node (896 MB usable) with 64 MB swap; the 1.25 GB
        # footprint cannot fit anywhere.
        return HadoopCluster(
            num_nodes=1,
            node_config=small_node_config(swap_bytes=64 * MB),
            hadoop_config=fast_hadoop_config(map_max_attempts=2),
            seed=9,
            trace=True,
        )

    def test_alloc_oom_kills_attempt_and_fails_job(self):
        cluster = self._oom_cluster()
        job = cluster.submit_job(
            JobSpec(
                name="hog",
                tasks=[
                    TaskSpec(
                        kind=TaskKind.MAP,
                        input_bytes=16 * MB,
                        parse_rate=4 * MB,
                        footprint_bytes=int(1.25 * GB),
                        profile=MemoryProfile.STATEFUL,
                        name="hog",
                    )
                ],
            )
        )
        cluster.run_until_jobs_complete(timeout=600.0)
        kernel = cluster.kernel_of("node00")
        assert kernel.oom_kills == 2  # both attempts died allocating
        assert cluster.jobtracker.oom_kills == 2
        assert job.state.value == "FAILED"
        attempts = cluster.attempts_of("hog")
        assert attempts and all(a.oom_killed() for a in attempts)
        assert all(
            a.process.exit_reason is ExitReason.OOM for a in attempts
        )
        # The OOM killer's victims never pollute the generic
        # task-failure cause.
        causes = cluster.jobtracker.wasted.by_cause()
        assert "task-failure" not in causes
        # RAM and swap accounting survived the kills.
        cluster.check_invariants()

    def test_suspend_stacking_oversubscription_ooms(self):
        # The Section III-A failure mode in miniature: a suspended
        # victim's resident set plus an incoming allocation exceed
        # RAM + swap.  Each demand *alone* fits the node; ungated
        # stacking makes them collide and the OOM killer fires.
        cluster = _cluster_with_running_task(
            footprint=300 * MB, swap_bytes=128 * MB
        )
        kernel = cluster.kernel_of("node00")
        tip = _tip_of(cluster, "victim")
        # The gate would have denied this suspension outright: the
        # victim cannot page into a 128 MB device.
        gate = SuspendAdmissionGate(cluster, AdmissionConfig())
        verdict = gate.evaluate(tip)
        assert not verdict.admitted and verdict.permanent
        # ...but ungated scheduling suspends anyway.
        cluster.jobtracker.suspend_task(tip.tip_id)
        while tip.state is not TipState.SUSPENDED:
            assert cluster.sim.step()
        assert kernel.memory_headroom().stopped_resident >= 300 * MB

        cluster.submit_job(
            JobSpec(
                name="hog",
                tasks=[
                    TaskSpec(
                        kind=TaskKind.MAP,
                        input_bytes=64 * MB,
                        parse_rate=4 * MB,
                        footprint_bytes=700 * MB,
                        profile=MemoryProfile.STATEFUL,
                        name="hog",
                    )
                ],
            )
        )
        cluster.run_until_jobs_complete(
            jobs=[cluster.job_by_name("hog")], timeout=600.0
        )
        assert kernel.oom_kills >= 1
        assert cluster.jobtracker.oom_kills >= 1
        # The suspended victim keeps its image through the kill storm.
        assert tip.state is TipState.SUSPENDED
        # Heartbeats carried the headroom view to the JobTracker: the
        # per-node suspended peak reflects the parked victim.
        reported = cluster.jobtracker.tracker_headroom["node00"]
        assert reported.stopped_resident + reported.stopped_swapped >= 300 * MB
        assert cluster.jobtracker.peak_suspended_bytes >= 300 * MB
        cluster.check_invariants()


class TestGatedUngatedDifferential:
    """Gated scheduling with effectively infinite swap must be
    event-for-event identical to today's ungated behaviour."""

    def test_fig2_cell_trace_identical(self):
        from repro.experiments.harness import TwoJobHarness

        for heavy in (False, True):
            ungated = TwoJobHarness(
                "suspend", 0.5, heavy=heavy, runs=1, keep_traces=True
            ).run_once(seed=77)
            gated = TwoJobHarness(
                "suspend", 0.5, heavy=heavy, runs=1, keep_traces=True,
                admission=AdmissionConfig(),
            ).run_once(seed=77)
            assert (
                gated.trace_cluster.sim.trace_log.digest()
                == ungated.trace_cluster.sim.trace_log.digest()
            )
            assert gated.sojourn_th == ungated.sojourn_th
            assert gated.tl_paged_bytes == ungated.tl_paged_bytes

    def test_hfsp_cell_trace_identical(self):
        from repro.experiments.hfsp_study import _run_once as hfsp_cell

        ungated = hfsp_cell("suspend", 6001, [20.0, 45.0], trace=True)
        gated = hfsp_cell(
            "suspend", 6001, [20.0, 45.0],
            admission=AdmissionConfig(), trace=True,
        )
        assert gated["trace_digest"] == ungated["trace_digest"]
        assert gated == ungated

    @pytest.mark.integration
    def test_scale_cell_trace_identical(self):
        from repro.experiments.scale_study import _run_once as scale_cell

        kwargs = dict(
            scenario="baseline",
            primitive_name="suspend",
            trackers=5,
            num_jobs=8,
            seed=31337,
            trace=True,
        )
        ungated = scale_cell(**kwargs)
        gated = scale_cell(admission=AdmissionConfig(), **kwargs)
        assert gated["trace_digest"] == ungated["trace_digest"]
        assert gated == ungated
