"""Schedulers: FIFO, dummy, fair, capacity, HFSP, deadline."""

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.states import TipState
from repro.preemption.base import make_primitive
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.deadline import DeadlineScheduler
from repro.schedulers.dummy import DummyScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.hfsp import HfspScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name, input_mb=35, tasks=1, priority=0, user="default", deadline=None):
    return JobSpec(
        name=name,
        priority=priority,
        user=user,
        deadline_seconds=deadline,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB, output_bytes=0)
            for _ in range(tasks)
        ],
    )


class TestFifo:
    def test_priority_order(self):
        cluster = quick_cluster(scheduler=FifoScheduler(), map_slots=1)
        low = cluster.submit_job(job_spec("low", priority=0))
        high = cluster.submit_job(job_spec("high", priority=5))
        cluster.run_until_jobs_complete()
        assert high.tips[0].first_launched_at < low.tips[0].first_launched_at

    def test_submit_order_breaks_ties(self):
        cluster = quick_cluster(scheduler=FifoScheduler(), map_slots=1)
        first = cluster.submit_job(job_spec("first"))
        cluster.start()
        cluster.sim.run(until=0.02)
        second = cluster.submit_job(job_spec("second"))
        cluster.run_until_jobs_complete()
        assert first.tips[0].first_launched_at <= second.tips[0].first_launched_at


class TestDummy:
    def test_allowlist_blocks_unlisted_jobs(self):
        scheduler = DummyScheduler(allowlist={"allowed"})
        cluster = quick_cluster(scheduler=scheduler)
        blocked = cluster.submit_job(job_spec("blocked"))
        allowed = cluster.submit_job(job_spec("allowed"))
        cluster.start()
        cluster.sim.run(until=15.0)
        assert allowed.tips[0].state is not TipState.UNASSIGNED
        assert blocked.tips[0].state is TipState.UNASSIGNED

    def test_freeze_unfreeze(self):
        scheduler = DummyScheduler()
        cluster = quick_cluster(scheduler=scheduler)
        scheduler.freeze("job")
        job = cluster.submit_job(job_spec("job", input_mb=7))
        cluster.start()
        cluster.sim.run(until=5.0)
        assert job.tips[0].state is TipState.UNASSIGNED
        scheduler.unfreeze("job")
        cluster.run_until_jobs_complete()
        assert job.tips[0].state is TipState.SUCCEEDED

    def test_allow_extends_allowlist(self):
        scheduler = DummyScheduler(allowlist=set())
        scheduler.allow("newjob")
        assert "newjob" in scheduler.allowlist


class TestFair:
    def test_fair_share_split(self):
        scheduler = FairScheduler()
        cluster = quick_cluster(scheduler=scheduler, map_slots=2)
        scheduler.attach_cluster(cluster)
        cluster.submit_job(job_spec("a1", tasks=4, user="alice"))
        cluster.submit_job(job_spec("b1", tasks=4, user="bob"))
        cluster.start()
        cluster.sim.run(until=8.0)
        running_by_user = {"alice": 0, "bob": 0}
        for job in cluster.jobtracker.jobs.values():
            for tip in job.tips:
                if tip.state is TipState.RUNNING:
                    running_by_user[job.spec.user] += 1
        # Two slots, two pools with demand -> one each.
        assert running_by_user == {"alice": 1, "bob": 1}

    def test_preemption_for_starved_pool(self):
        scheduler = FairScheduler(
            primitive_factory=lambda c: make_primitive("suspend", c),
            preemption_timeout=2.0,
            check_interval=1.0,
        )
        cluster = quick_cluster(scheduler=scheduler, map_slots=2)
        scheduler.attach_cluster(cluster)
        # Alice grabs both slots with long tasks...
        alice = cluster.submit_job(job_spec("a1", tasks=2, input_mb=350, user="alice"))
        cluster.start()
        cluster.sim.run(until=6.0)
        # ...then Bob arrives and starves.
        bob = cluster.submit_job(job_spec("b1", tasks=1, input_mb=14, user="bob"))
        cluster.sim.run(until=30.0)
        assert scheduler.preemptions >= 1
        assert bob.tips[0].state in (TipState.RUNNING, TipState.SUCCEEDED)

    def test_no_preemption_without_primitive(self):
        scheduler = FairScheduler()
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        scheduler.attach_cluster(cluster)
        cluster.submit_job(job_spec("a1", user="alice", input_mb=70))
        cluster.start()
        cluster.sim.run(until=4.0)
        cluster.submit_job(job_spec("b1", user="bob", input_mb=7))
        cluster.sim.run(until=12.0)
        assert scheduler.preemptions == 0


class TestCapacity:
    def test_quota_split(self):
        scheduler = CapacityScheduler(
            queue_capacity={"prod": 0.5, "dev": 0.5}, default_queue="dev"
        )
        cluster = quick_cluster(scheduler=scheduler, map_slots=2)
        cluster.submit_job(job_spec("p1", tasks=4, user="prod"))
        cluster.submit_job(job_spec("d1", tasks=4, user="dev"))
        cluster.start()
        cluster.sim.run(until=8.0)
        running = {"prod": 0, "dev": 0}
        for job in cluster.jobtracker.jobs.values():
            for tip in job.tips:
                if tip.state is TipState.RUNNING:
                    running[job.spec.user] += 1
        assert running == {"prod": 1, "dev": 1}

    def test_elastic_borrowing(self):
        scheduler = CapacityScheduler(
            queue_capacity={"prod": 0.5, "dev": 0.5}, default_queue="dev"
        )
        cluster = quick_cluster(scheduler=scheduler, map_slots=2)
        job = cluster.submit_job(job_spec("d1", tasks=4, user="dev"))
        cluster.start()
        cluster.sim.run(until=8.0)
        running = sum(1 for t in job.tips if t.state is TipState.RUNNING)
        assert running == 2  # dev borrowed prod's idle quota

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityScheduler(queue_capacity={"a": 0.9, "b": 0.9})


class TestHfsp:
    def test_smallest_job_first(self):
        scheduler = HfspScheduler()
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        scheduler.attach_cluster(cluster)
        big = cluster.submit_job(job_spec("big", input_mb=140))
        small = cluster.submit_job(job_spec("small", input_mb=14))
        cluster.run_until_jobs_complete()
        assert small.tips[0].first_launched_at < big.tips[0].first_launched_at

    def test_preempt_on_smaller_arrival(self):
        scheduler = HfspScheduler(
            primitive_factory=lambda c: make_primitive("suspend", c)
        )
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        scheduler.attach_cluster(cluster)
        big = cluster.submit_job(job_spec("big", input_mb=350))
        cluster.start()
        cluster.sim.run(until=6.0)
        small = cluster.submit_job(job_spec("small", input_mb=14))
        cluster.run_until_jobs_complete(timeout=7200)
        assert scheduler.preemptions >= 1
        # The small job finished long before the big one.
        assert small.finish_time < big.finish_time
        assert big.state.value == "SUCCEEDED"

    def test_remaining_size_decreases_with_progress(self):
        scheduler = HfspScheduler()
        cluster = quick_cluster(scheduler=scheduler)
        job = cluster.submit_job(job_spec("j", input_mb=70))
        size_before = scheduler.remaining_size(job)
        cluster.start()
        cluster.sim.run(until=6.0)
        job.tips[0].progress = 0.5
        assert scheduler.remaining_size(job) < size_before


class TestDeadline:
    def test_edf_ordering(self):
        scheduler = DeadlineScheduler()
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        relaxed = cluster.submit_job(job_spec("relaxed", deadline=500.0))
        urgent = cluster.submit_job(job_spec("urgent", deadline=60.0))
        cluster.run_until_jobs_complete()
        assert urgent.tips[0].first_launched_at < relaxed.tips[0].first_launched_at

    def test_background_jobs_run_last(self):
        scheduler = DeadlineScheduler()
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        background = cluster.submit_job(job_spec("bg"))
        deadlined = cluster.submit_job(job_spec("dl", deadline=100.0))
        cluster.run_until_jobs_complete()
        assert (
            deadlined.tips[0].first_launched_at
            < background.tips[0].first_launched_at
        )

    def test_slack_preemption(self):
        scheduler = DeadlineScheduler(
            primitive_factory=lambda c: make_primitive("suspend", c),
            check_interval=1.0,
            slack_margin=5.0,
        )
        cluster = quick_cluster(scheduler=scheduler, map_slots=1)
        scheduler.attach_cluster(cluster)
        bg = cluster.submit_job(job_spec("bg", input_mb=350))
        cluster.start()
        cluster.sim.run(until=6.0)
        urgent = cluster.submit_job(job_spec("urgent", input_mb=14, deadline=15.0))
        cluster.run_until_jobs_complete(timeout=7200)
        assert scheduler.preemptions >= 1
        assert urgent.state.value == "SUCCEEDED"
        assert bg.state.value == "SUCCEEDED"
