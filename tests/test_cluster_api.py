"""Cluster facade helpers and a preemption-storm property test."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.states import TipState
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import fast_hadoop_config, quick_cluster, small_node_config


def job_spec(name="job", input_mb=70):
    return JobSpec(
        name=name,
        tasks=[TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                        output_bytes=0)],
    )


class TestClusterConstruction:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            HadoopCluster(num_nodes=0)

    def test_needs_at_least_one_rack(self):
        with pytest.raises(ConfigurationError):
            HadoopCluster(num_nodes=1, racks=0)

    def test_hostnames_and_racks(self):
        cluster = HadoopCluster(
            num_nodes=4,
            racks=2,
            node_config=small_node_config(),
            hadoop_config=fast_hadoop_config(),
        )
        assert sorted(cluster.kernels) == ["node00", "node01", "node02", "node03"]
        racks = {cluster.topology.rack_of(h) for h in cluster.kernels}
        assert racks == {"/rack0", "/rack1"}

    def test_kernel_of_unknown_host(self):
        cluster = quick_cluster()
        with pytest.raises(ConfigurationError):
            cluster.kernel_of("nope")

    def test_start_idempotent(self):
        cluster = quick_cluster()
        cluster.start()
        hb = cluster.sim.pending_events
        cluster.start()
        assert cluster.sim.pending_events == hb


class TestLookupHelpers:
    def test_find_live_attempt_none_before_launch(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec())
        assert cluster.find_live_attempt("job") is None
        assert cluster.find_live_attempt("ghost") is None

    def test_find_live_attempt_after_launch(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=6.0)
        attempt = cluster.find_live_attempt("job")
        assert attempt is not None
        assert attempt.role.value == "task"

    def test_attempts_of_excludes_aux_by_default(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec(input_mb=7))
        cluster.run_until_jobs_complete()
        work_only = cluster.attempts_of("job")
        with_aux = cluster.attempts_of("job", include_aux=True)
        assert len(work_only) == 1
        assert len(with_aux) == 3  # setup + work + cleanup

    def test_when_job_progress_before_submission(self):
        cluster = quick_cluster()
        hits = []
        cluster.when_job_progress("late", 0.5, lambda: hits.append(cluster.sim.now))
        cluster.start()
        cluster.sim.run(until=2.0)
        cluster.jobtracker.submit_job(job_spec("late", input_mb=14))
        cluster.run_until_jobs_complete()
        assert len(hits) == 1

    def test_run_until_jobs_complete_timeout(self):
        cluster = quick_cluster(scheduler=None)
        # A job that can never run: freeze it via an allowlist scheduler.
        from repro.schedulers.dummy import DummyScheduler

        cluster2 = quick_cluster(scheduler=DummyScheduler(allowlist=set()))
        cluster2.submit_job(job_spec())
        with pytest.raises(ConfigurationError):
            cluster2.run_until_jobs_complete(timeout=30.0)


class TestPreemptionStorm:
    """Random suspend/resume/kill storms must never wedge the cluster."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.sampled_from(["suspend", "resume", "kill", "noop"]),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    def test_storm_always_completes(self, actions, seed):
        cluster = quick_cluster(seed=seed)
        job = cluster.submit_job(job_spec(input_mb=35))
        tip = job.tips[0]

        def act(index: int) -> None:
            if index >= len(actions):
                return
            action = actions[index]
            try:
                if action == "suspend" and tip.state is TipState.RUNNING:
                    cluster.jobtracker.suspend_task(tip.tip_id)
                elif action == "resume" and tip.state is TipState.SUSPENDED:
                    cluster.jobtracker.resume_task(tip.tip_id)
                elif action == "kill" and tip.state in (
                    TipState.RUNNING,
                    TipState.SUSPENDED,
                ):
                    cluster.jobtracker.kill_task(tip.tip_id)
            finally:
                cluster.sim.schedule(2.0, act, index + 1)

        cluster.sim.schedule(4.0, act, 0)

        # Un-wedge rule: anything left suspended at the end is resumed.
        def janitor():
            if tip.state is TipState.SUSPENDED:
                cluster.jobtracker.resume_task(tip.tip_id)
            if not tip.state.terminal:
                cluster.sim.schedule(5.0, janitor)

        cluster.sim.schedule(4.0 + 2.0 * len(actions) + 1.0, janitor)
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert tip.state is TipState.SUCCEEDED
        cluster.check_invariants()
