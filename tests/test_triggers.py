"""The dummy scheduler's trigger engine."""

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.states import TipState
from repro.schedulers.dummy import DummyScheduler
from repro.schedulers.triggers import (
    CompletionTrigger,
    ProgressTrigger,
    TriggerAction,
    TriggerEngine,
    TriggerRule,
)
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name, input_mb=70, priority=0):
    return JobSpec(
        name=name,
        priority=priority,
        tasks=[TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                        output_bytes=0)],
    )


class TestRuleValidation:
    def test_submit_needs_spec(self):
        with pytest.raises(ConfigurationError):
            ProgressTrigger("a", 0.5, [TriggerRule(TriggerAction.SUBMIT_JOB)])

    def test_suspend_needs_target(self):
        with pytest.raises(ConfigurationError):
            ProgressTrigger("a", 0.5, [TriggerRule(TriggerAction.SUSPEND_TASKS)])

    def test_call_needs_callback(self):
        with pytest.raises(ConfigurationError):
            ProgressTrigger("a", 0.5, [TriggerRule(TriggerAction.CALL)])

    def test_progress_bounds(self):
        with pytest.raises(ConfigurationError):
            ProgressTrigger("a", 1.5, [])


class TestProgressTriggers:
    def test_fires_at_exact_progress(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        fired_at = []
        engine.add_progress_trigger(
            ProgressTrigger(
                "watched",
                0.5,
                [TriggerRule(TriggerAction.CALL,
                             callback=lambda: fired_at.append(cluster.sim.now))],
            )
        )
        job = cluster.submit_job(job_spec("watched"))
        cluster.run_until_jobs_complete()
        assert len(fired_at) == 1
        # 70 MB at 7 MB/s: 50% of the map is 5 s in; plus jvm/setup
        # preamble the crossing lands shortly after launch + 5 s.
        launch = job.tips[0].first_launched_at
        assert fired_at[0] == pytest.approx(launch + 5.0, abs=1.5)

    def test_fires_once(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        count = []
        engine.add_progress_trigger(
            ProgressTrigger(
                "watched", 0.2,
                [TriggerRule(TriggerAction.CALL, callback=lambda: count.append(1))],
            )
        )
        cluster.submit_job(job_spec("watched"))
        cluster.run_until_jobs_complete()
        assert len(count) == 1

    def test_submit_and_suspend_rules(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        high = job_spec("high", input_mb=14, priority=5)
        engine.add_progress_trigger(
            ProgressTrigger(
                "low",
                0.4,
                [
                    TriggerRule(TriggerAction.SUBMIT_JOB, job_spec=high),
                    TriggerRule(TriggerAction.SUSPEND_TASKS, target_job="low"),
                ],
            )
        )
        low = cluster.submit_job(job_spec("low"))
        cluster.start()
        cluster.sim.run(until=15.0)
        assert low.tips[0].state is TipState.SUSPENDED
        assert cluster.job_by_name("high") is not None

    def test_completion_trigger_resumes(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        high = job_spec("high", input_mb=14, priority=5)
        engine.add_progress_trigger(
            ProgressTrigger(
                "low", 0.4,
                [
                    TriggerRule(TriggerAction.SUBMIT_JOB, job_spec=high),
                    TriggerRule(TriggerAction.SUSPEND_TASKS, target_job="low"),
                ],
            )
        )
        engine.add_completion_trigger(
            CompletionTrigger(
                "high", [TriggerRule(TriggerAction.RESUME_TASKS, target_job="low")]
            )
        )
        low = cluster.submit_job(job_spec("low"))
        cluster.run_until_jobs_complete(timeout=7200)
        assert low.tips[0].state is TipState.SUCCEEDED
        attempts = cluster.attempts_of("low")
        assert sum(a.resume_count for a in attempts) == 1

    def test_kill_rule(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        engine.add_progress_trigger(
            ProgressTrigger(
                "low", 0.4, [TriggerRule(TriggerAction.KILL_TASKS, target_job="low")]
            )
        )
        low = cluster.submit_job(job_spec("low"))
        cluster.run_until_jobs_complete(timeout=7200)
        assert low.tips[0].state is TipState.SUCCEEDED
        assert low.tips[0].next_attempt_number == 2  # killed then rerun

    def test_trigger_added_after_attempt_running(self):
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        low = cluster.submit_job(job_spec("low"))
        cluster.start()
        cluster.sim.run(until=5.0)  # attempt already running
        fired = []
        engine.add_progress_trigger(
            ProgressTrigger(
                "low", 0.8,
                [TriggerRule(TriggerAction.CALL, callback=lambda: fired.append(1))],
            )
        )
        cluster.run_until_jobs_complete()
        assert fired == [1]

    def test_trigger_ignores_setup_attempts(self):
        # The watcher must arm on the work attempt, not the setup task.
        cluster = quick_cluster(scheduler=DummyScheduler())
        engine = TriggerEngine(cluster)
        seen_progress = []

        def record():
            job = cluster.job_by_name("watched")
            seen_progress.append(job.tips[0].progress)

        engine.add_progress_trigger(
            ProgressTrigger(
                "watched", 0.5, [TriggerRule(TriggerAction.CALL, callback=record)]
            )
        )
        cluster.submit_job(job_spec("watched"))
        cluster.run_until_jobs_complete()
        assert len(seen_progress) == 1
