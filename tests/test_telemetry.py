"""Telemetry units: metric sketches, span stitching, trace export,
engine self-profiling.

These pin the contracts ARCHITECTURE.md's Telemetry section states:
deterministic log-buckets with exact moments, order-insensitive
merges, span stitching from flat trace records, trace-event schema
validation, and stable label-family collapsing.
"""

import json
import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.trace import TraceLog
from repro.telemetry import (
    Counter,
    Gauge,
    LogHistogram,
    MetricRegistry,
    SpanCollector,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.profiling import (
    UNLABELLED,
    collapse_labels,
    label_family,
    render_engine_stats,
)
from repro.telemetry.registry import (
    _metric_from_dict,
    bucket_bounds,
    bucket_index,
)
from repro.telemetry.spans import Instant, Span, tip_of_attempt


class TestBuckets:
    def test_value_falls_inside_its_bucket(self):
        for value in (1e-9, 0.37, 1.0, 2.5, 17.0, 4096.0, 1e12):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi or value == lo

    def test_negative_values_mirror_positive(self):
        sign, sub = bucket_index(-2.5)
        pos_sign, pos_sub = bucket_index(2.5)
        assert sign == -1 and pos_sign == 1 and sub == pos_sub

    def test_bucket_width_is_bounded(self):
        # 8 sub-buckets per octave: width ratio 2**(1/8) ~ 9%.
        lo, hi = bucket_bounds(bucket_index(123.456))
        assert hi / lo == pytest.approx(2 ** 0.125)


class TestCounter:
    def test_counts_up_only(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_merge_adds(self):
        a, b = Counter(3), Counter(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_keeps_latest(self):
        gauge = Gauge()
        gauge.set(1.0, 10.0)
        gauge.set(5.0, 2.0)
        gauge.set(3.0, 99.0)  # earlier than the current sample: ignored
        assert gauge.value == 2.0
        assert gauge.time == 5.0

    def test_merge_is_order_insensitive(self):
        a, b = Gauge(), Gauge()
        a.set(2.0, 7.0)
        b.set(4.0, 1.0)
        ab = Gauge()
        ab.merge(a)
        ab.merge(b)
        ba = Gauge()
        ba.merge(b)
        ba.merge(a)
        assert ab.state() == ba.state()
        assert ab.value == 1.0


class TestLogHistogram:
    def test_moments_are_exact(self):
        hist = LogHistogram()
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        # Fraction accumulation: no float drift in the sum.
        assert hist.mean() == pytest.approx(0.2)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.6)

    def test_rejects_non_finite(self):
        hist = LogHistogram()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ConfigurationError):
                hist.observe(bad)

    def test_quantile_bounds_and_range_check(self):
        hist = LogHistogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.0) <= hist.quantile(0.5) <= hist.quantile(1.0)
        # ~9% relative bucket width bounds the quantile error.
        assert hist.quantile(0.5) == pytest.approx(50.0, rel=0.1)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_single_sample_quantiles(self):
        hist = LogHistogram()
        hist.observe(42.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == pytest.approx(42.0, rel=0.1)

    def test_merge_matches_single_stream_exactly(self):
        rng = random.Random(7)
        values = [rng.expovariate(0.1) for _ in range(500)]
        whole = LogHistogram()
        for value in values:
            whole.observe(value)
        shards = [LogHistogram() for _ in range(4)]
        for index, value in enumerate(values):
            shards[index % 4].observe(value)
        rng.shuffle(shards)
        merged = LogHistogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.state() == whole.state()

    def test_dict_round_trip(self):
        hist = LogHistogram()
        for value in (0.5, 1.5, -3.0):
            hist.observe(value)
        clone = _metric_from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.state() == hist.state()
        json.dumps(hist.to_dict())  # payload must be JSON-serializable


class TestMetricRegistry:
    def test_kind_mismatch_is_an_error(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_digest_ignores_insertion_order(self):
        a = MetricRegistry()
        a.counter("c").inc(2)
        a.observe("h", 1.5)
        b = MetricRegistry()
        b.observe("h", 1.5)
        b.counter("c").inc(2)
        assert a.digest() == b.digest()

    def test_merge_permutation_invariant(self):
        rng = random.Random(11)
        shards = []
        for shard_index in range(5):
            registry = MetricRegistry()
            for _ in range(50):
                registry.observe("sojourn", rng.expovariate(0.05))
            registry.counter("jobs").inc(shard_index + 1)
            shards.append(registry)
        merged_fwd = MetricRegistry()
        for shard in shards:
            merged_fwd.merge(shard)
        merged_rev = MetricRegistry()
        for shard in reversed(shards):
            merged_rev.merge(shard)
        assert merged_fwd.digest() == merged_rev.digest()
        assert merged_fwd.counter("jobs").value == 15

    def test_from_dict_round_trip_preserves_digest(self):
        registry = MetricRegistry()
        registry.observe("h", 0.125)
        registry.gauge("g").set(3.0, 9.0)
        registry.counter("c").inc(7)
        payload = json.loads(json.dumps(registry.to_dict()))
        assert MetricRegistry.from_dict(payload).digest() == registry.digest()


class TestTipOfAttempt:
    def test_parses_standard_ids(self):
        assert tip_of_attempt("attempt_job1_m_0003_1") == "job1_m_0003"
        assert tip_of_attempt("attempt_x_0") == "x"

    def test_rejects_non_attempts(self):
        assert tip_of_attempt("task_job1_m_0003") is None
        assert tip_of_attempt("attempt_noseq") is None


class TestSpanStitching:
    def test_attempt_lifecycle_becomes_host_span(self):
        log = TraceLog()
        collector = SpanCollector().attach(log)
        log.record(1.0, "attempt.launch", attempt="attempt_t1_0", host="n0")
        log.record(9.0, "attempt.finished", attempt="attempt_t1_0",
                   host="n0", state="SUCCEEDED")
        (span,) = collector.by_category("attempt")
        assert (span.start, span.end, span.track) == (1.0, 9.0, "n0")
        assert span.args["tip"] == "t1"

    def test_suspend_episode_with_phases(self):
        log = TraceLog()
        collector = SpanCollector().attach(log)
        log.record(2.0, "jt.must-suspend", tip="t1")
        log.record(2.5, "jt.suspended", tip="t1")
        log.record(8.0, "jt.resumed", tip="t1")
        (episode,) = collector.by_category("episode")
        assert episode.args["kind"] == "suspend"
        assert episode.args["wasted_seconds"] == 0.0
        phases = {s.name: (s.start, s.end)
                  for s in collector.by_category("episode-phase")}
        assert phases == {"suspending": (2.0, 2.5), "stopped": (2.5, 8.0)}

    def test_kill_episode_accumulates_wasted_until_relaunch(self):
        log = TraceLog()
        collector = SpanCollector().attach(log)
        log.record(3.0, "jt.must-kill", tip="t2")
        log.record(3.5, "jt.tip-killed", tip="t2", wasted=12.25,
                   reschedule=True)
        log.record(7.0, "attempt.launch", attempt="attempt_t2_1", host="n1")
        (episode,) = collector.by_category("episode")
        assert episode.args == {
            "kind": "kill", "wasted_seconds": 12.25, "kills": 1,
            "relaunched": True,
        }
        assert (episode.start, episode.end) == (3.0, 7.0)
        assert collector.episode_wasted_seconds() == 12.25

    def test_net_transfer_span_and_cancel_flag(self):
        log = TraceLog()
        collector = SpanCollector().attach(log)
        log.record(1.0, "net.xfer-start", xfer=1, name="shuffle:a",
                   src="n0", dst="n1", bytes=100)
        log.record(4.0, "net.xfer-cancel", xfer=1, name="shuffle:a",
                   src="n0", dst="n1", bytes=60)
        (span,) = collector.by_category("net")
        assert span.track == "n1"
        assert span.args["cancelled"] is True
        assert span.args["bytes"] == 60

    def test_close_open_flushes_everything(self):
        log = TraceLog()
        collector = SpanCollector().attach(log)
        log.record(1.0, "attempt.launch", attempt="attempt_t3_0", host="n0")
        log.record(2.0, "jt.must-suspend", tip="t3")
        collector.close_open(10.0)
        assert all(span.end == 10.0 for span in collector.spans)
        assert not collector._attempts and not collector._suspends

    def test_feed_replays_a_stored_log(self):
        log = TraceLog()
        log.record(1.0, "attempt.launch", attempt="attempt_t4_0", host="n0")
        log.record(2.0, "attempt.finished", attempt="attempt_t4_0", host="n0")
        collector = SpanCollector().feed(log)
        assert len(collector.by_category("attempt")) == 1
        assert collector.records_seen == 2

    def test_heartbeats_off_by_default(self):
        log = TraceLog()
        quiet = SpanCollector().attach(log)
        chatty = SpanCollector(include_heartbeats=True).attach(log)
        log.record(1.0, "jt.response", tracker="n0", actions="")
        assert quiet.instants == []
        assert len(chatty.instants) == 1


class TestChromeExport:
    def _groups(self):
        spans = [Span("work", "attempt", 1.0, 2.0, "n0", {"tip": "t"})]
        instants = [Instant("mark", "directive", 1.5, "n0")]
        return [("cell", spans, instants)]

    def test_export_validates_and_is_deterministic(self):
        a = to_chrome_trace(self._groups())
        b = to_chrome_trace(self._groups())
        validate_chrome_trace(a)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_export_scales_seconds_to_microseconds(self):
        trace = to_chrome_trace(self._groups())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == pytest.approx(1_000_000.0)
        assert complete[0]["dur"] == pytest.approx(1_000_000.0)

    def test_validator_rejects_malformed_traces(self):
        good = to_chrome_trace(self._groups())
        for mutate in (
            lambda t: t.pop("traceEvents"),
            lambda t: t["traceEvents"].append({"ph": "Z", "name": "x",
                                               "pid": 1, "tid": 1, "ts": 0}),
            lambda t: t["traceEvents"].append({"ph": "X", "name": "x",
                                               "pid": 1, "tid": 1,
                                               "ts": -1.0, "dur": 1.0}),
            lambda t: t["traceEvents"].append({"ph": "X", "name": "x",
                                               "pid": 1, "tid": 1,
                                               "ts": 0.0}),  # missing dur
        ):
            broken = json.loads(json.dumps(good))
            mutate(broken)
            with pytest.raises(ValueError):
                validate_chrome_trace(broken)


class TestLabelFamilies:
    def test_strips_entity_suffix_and_host_prefix(self):
        assert label_family("tt.heartbeat:node03") == "tt.heartbeat"
        assert label_family("node03.cpu.crossing") == "cpu.crossing"
        assert label_family("node12.disk.write.crossing") == "disk.write.crossing"
        assert label_family("jt.expiry-check") == "jt.expiry-check"
        assert label_family("") == UNLABELLED

    def test_collapse_sums_families(self):
        counts = {"tt.heartbeat:node00": 2, "tt.heartbeat:node01": 3,
                  "node00.cpu.crossing": 5, "": 1}
        assert collapse_labels(counts) == {
            "tt.heartbeat": 5, "cpu.crossing": 5, UNLABELLED: 1,
        }

    def test_render_engine_stats_without_profile(self):
        stats = {
            "events_fired": 10, "events_scheduled": 12, "reschedules": 1,
            "reschedule_reuses": 0, "compactions": 0, "heap_size": 2,
            "pending_events": 2, "profile_enabled": False,
        }
        out = render_engine_stats(stats)
        assert "profile=True" in out
