"""Processor-shared resources: rates, pause/resume, milestones."""

import pytest

from repro.sim.engine import Simulation
from repro.osmodel.resources import CpuResource, DiskResource, RateResource


class TestSingleClaim:
    def test_completion_time(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        res.submit(50.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_zero_units_completes_immediately(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        res.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.0)]


class TestSharing:
    def test_two_claims_half_rate(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = {}
        res.submit(50.0, lambda: done.setdefault("a", sim.now))
        res.submit(50.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # Both share 10 units/s -> each runs at 5 -> done at t=10.
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_late_arrival_slows_first(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = {}
        res.submit(50.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(
            2.0, lambda: res.submit(30.0, lambda: done.setdefault("b", sim.now))
        )
        sim.run()
        # a: 20 units in first 2s, then 5/s -> 2 + 30/5 = 8s total.
        assert done["a"] == pytest.approx(8.0)
        # b: 30 units at 5/s while sharing (6s), then alone (but done at same time
        # as a finishes: after a, rate doubles). b has 30 - 6*... compute:
        # from t=2..8 both at 5/s -> b has 30-30=0 at t=8.
        assert done["b"] == pytest.approx(8.0)

    def test_pause_preserves_remaining(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        claim = res.submit(100.0, lambda: done.append(sim.now))
        sim.schedule(3.0, lambda: res.pause(claim))
        sim.schedule(10.0, lambda: res.activate(claim))
        sim.run()
        # 30 units by t=3; paused 7s; remaining 70 at 10/s -> t=17.
        assert done == [pytest.approx(17.0)]

    def test_cancel_never_completes(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        claim = res.submit(100.0, lambda: done.append(sim.now))
        sim.schedule(1.0, lambda: res.cancel(claim))
        sim.run()
        assert done == []
        assert claim.done

    def test_fraction_done_settles_live(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        claim = res.submit(100.0, lambda: None)
        checks = []
        sim.schedule(5.0, lambda: checks.append(claim.fraction_done()))
        sim.run(until=5.0)
        sim.run(max_events=1)
        assert checks and checks[0] == pytest.approx(0.5)


class TestMilestones:
    def test_milestone_exact_time(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(50.0, lambda: hits.append(sim.now))  # halfway
        sim.run()
        assert hits == [pytest.approx(5.0)]

    def test_milestone_already_crossed_fires_soon(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)

        def late_register():
            claim.add_milestone(95.0, lambda: hits.append(sim.now))

        sim.schedule(2.0, late_register)  # remaining=80 < 95 at t=2
        sim.run()
        assert hits and hits[0] == pytest.approx(2.0)

    def test_milestone_survives_pause_resume(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(40.0, lambda: hits.append(sim.now))  # at t=6 if unpaused
        sim.schedule(2.0, lambda: res.pause(claim))
        sim.schedule(5.0, lambda: res.activate(claim))
        sim.run()
        # paused 3s, so crossing shifts from 6.0 to 9.0
        assert hits == [pytest.approx(9.0)]

    def test_milestone_with_rate_change(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(50.0, lambda: hits.append(sim.now))
        # A competing claim halves the rate from t=1.
        sim.schedule(1.0, lambda: res.submit(1000.0, lambda: None))
        sim.run(until=30.0)
        # 10 units by t=1, then 5/s: remaining to milestone = 40 -> t=9.
        assert hits == [pytest.approx(9.0)]

    def test_unfired_milestone_fires_at_completion(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(10.0, lambda: None)
        claim.add_milestone(0.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [pytest.approx(1.0)]


class TestCpuResource:
    def test_up_to_cores_full_speed(self):
        sim = Simulation()
        cpu = CpuResource(sim, cores=2)
        done = {}
        cpu.submit(10.0, lambda: done.setdefault("a", sim.now))
        cpu.submit(10.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_oversubscribed_shares(self):
        sim = Simulation()
        cpu = CpuResource(sim, cores=2)
        done = {}
        for name in ("a", "b", "c", "d"):
            cpu.submit(10.0, lambda n=name: done.setdefault(n, sim.now))
        sim.run()
        # 4 claims on 2 cores -> each at 0.5 core -> 20s.
        assert all(t == pytest.approx(20.0) for t in done.values())


class TestDiskResource:
    def test_bandwidth_sharing(self):
        sim = Simulation()
        disk = DiskResource(sim, bandwidth=100.0)
        done = {}
        disk.submit(100.0, lambda: done.setdefault("a", sim.now))
        disk.submit(300.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # a: shares 50/s until done at t=2; b: 200 left at t=2, then
        # alone at 100/s -> done at t=4.
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(4.0)


class TestFloatDrift:
    """Remaining work is derived from the cumulative service total, so
    settlement cycles cannot accumulate subtraction error."""

    def test_10k_settle_cycles_exact_remaining(self):
        # Pause/resume with zero elapsed time between: the remaining
        # units must round-trip *exactly* -- the old model subtracted a
        # settled delta per cycle and drifted.
        sim = Simulation()
        res = RateResource(sim, capacity=3.0)
        claim = res.submit(1.0 / 3.0, lambda: None)
        start_remaining = claim.remaining
        for _ in range(10_000):
            res.pause(claim)
            res.activate(claim)
        assert claim.remaining == start_remaining

    def test_10k_churn_cycles_completion_time(self):
        # A long-lived claim survives 10k rate changes from short
        # competing claims; its completion time must match the analytic
        # value to float precision, not wander with the churn.
        sim = Simulation()
        res = RateResource(sim, capacity=2.0)
        done = []
        victim = res.submit(10_000.0, lambda: done.append(sim.now))
        interval = 0.25

        def churn(i=[0]):
            i[0] += 1
            if i[0] <= 10_000:
                res.submit(interval, lambda: None)  # ~one rate change each
                sim.schedule(interval, churn)

        sim.schedule(0.0, churn)
        sim.run()
        assert len(done) == 1
        # Work accounting: victim gets 1.0/s while sharing with one
        # short claim, 2.0/s otherwise; each churn claim takes 0.25
        # units => victim's completion solves the piecewise integral.
        # Rather than re-deriving the exact closed form, assert against
        # the legacy oracle which integrates the same script eagerly.
        from tests.legacy_resources import LegacyRateResource

        sim2 = Simulation()
        res2 = LegacyRateResource(sim2, capacity=2.0)
        done2 = []
        res2.submit(10_000.0, lambda: done2.append(sim2.now))

        def churn2(i=[0]):
            i[0] += 1
            if i[0] <= 10_000:
                res2.submit(interval, lambda: None)
                sim2.schedule(interval, churn2)

        sim2.schedule(0.0, churn2)
        sim2.run()
        assert done[0] == pytest.approx(done2[0], rel=1e-9)

    def test_fraction_done_monotone_under_churn(self):
        sim = Simulation()
        res = RateResource(sim, capacity=5.0)
        claim = res.submit(200.0, lambda: None)
        seen = []

        def sample(step=[0]):
            seen.append(claim.fraction_done())
            step[0] += 1
            if step[0] < 200:
                if step[0] % 3 == 0:
                    res.submit(1.0, lambda: None)
                sim.schedule(0.3, sample)

        sim.schedule(0.3, sample)
        sim.run()
        assert seen == sorted(seen)
        assert claim.done


class TestEventChurn:
    """The virtual-time model's acceptance bar: per-state-change event
    traffic is O(log n) heap work and O(1) engine events, however many
    claims are active."""

    N = 512

    def _loaded_resource(self):
        sim = Simulation()
        res = RateResource(sim, capacity=1000.0)
        claims = [res.submit(1e9 + i, lambda: None) for i in range(self.N)]
        return sim, res, claims

    @staticmethod
    def _engine_ops(sim):
        return sim.events_scheduled + sim.reschedules

    def test_activate_is_constant_engine_traffic(self):
        sim, res, claims = self._loaded_resource()
        before = self._engine_ops(sim)
        res.submit(1e9, lambda: None)
        # One armed-event move at most, plus the new claim's crossing
        # bookkeeping: independent of the 512 active claims (the eager
        # model re-armed 513 completion events here).
        assert self._engine_ops(sim) - before <= 2

    def test_pause_resume_is_constant_engine_traffic(self):
        sim, res, claims = self._loaded_resource()
        before = self._engine_ops(sim)
        res.pause(claims[17])
        res.activate(claims[17])
        assert self._engine_ops(sim) - before <= 4

    def test_speed_change_is_constant_engine_traffic(self):
        sim, res, claims = self._loaded_resource()
        before = self._engine_ops(sim)
        res.set_speed_factor(0.5)
        res.set_speed_factor(1.0)
        assert self._engine_ops(sim) - before <= 2

    def test_one_armed_event_for_many_claims(self):
        sim, res, claims = self._loaded_resource()
        # 512 active claims, one pending engine event for all of them.
        assert sim.pending_events == 1

    def test_rate_changes_defer_instead_of_reschedule(self):
        sim, res, _ = self._loaded_resource()
        # Every submit slowed the shared rate, pushing the armed event
        # later: the engine must have recycled its heap entry rather
        # than cancel+push each time.
        assert sim.reschedule_reuses > self.N // 2

    def test_completion_storm_still_fires_everything(self):
        sim = Simulation()
        res = RateResource(sim, capacity=100.0)
        done = []
        for i in range(100):
            res.submit(50.0, lambda i=i: done.append(i))
        sim.run()
        assert sorted(done) == list(range(100))
        assert res.active_claims == 0
