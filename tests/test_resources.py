"""Processor-shared resources: rates, pause/resume, milestones."""

import pytest

from repro.sim.engine import Simulation
from repro.osmodel.resources import CpuResource, DiskResource, RateResource


class TestSingleClaim:
    def test_completion_time(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        res.submit(50.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_zero_units_completes_immediately(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        res.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.0)]


class TestSharing:
    def test_two_claims_half_rate(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = {}
        res.submit(50.0, lambda: done.setdefault("a", sim.now))
        res.submit(50.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # Both share 10 units/s -> each runs at 5 -> done at t=10.
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_late_arrival_slows_first(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = {}
        res.submit(50.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(
            2.0, lambda: res.submit(30.0, lambda: done.setdefault("b", sim.now))
        )
        sim.run()
        # a: 20 units in first 2s, then 5/s -> 2 + 30/5 = 8s total.
        assert done["a"] == pytest.approx(8.0)
        # b: 30 units at 5/s while sharing (6s), then alone (but done at same time
        # as a finishes: after a, rate doubles). b has 30 - 6*... compute:
        # from t=2..8 both at 5/s -> b has 30-30=0 at t=8.
        assert done["b"] == pytest.approx(8.0)

    def test_pause_preserves_remaining(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        claim = res.submit(100.0, lambda: done.append(sim.now))
        sim.schedule(3.0, lambda: res.pause(claim))
        sim.schedule(10.0, lambda: res.activate(claim))
        sim.run()
        # 30 units by t=3; paused 7s; remaining 70 at 10/s -> t=17.
        assert done == [pytest.approx(17.0)]

    def test_cancel_never_completes(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        done = []
        claim = res.submit(100.0, lambda: done.append(sim.now))
        sim.schedule(1.0, lambda: res.cancel(claim))
        sim.run()
        assert done == []
        assert claim.done

    def test_fraction_done_settles_live(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        claim = res.submit(100.0, lambda: None)
        checks = []
        sim.schedule(5.0, lambda: checks.append(claim.fraction_done()))
        sim.run(until=5.0)
        sim.run(max_events=1)
        assert checks and checks[0] == pytest.approx(0.5)


class TestMilestones:
    def test_milestone_exact_time(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(50.0, lambda: hits.append(sim.now))  # halfway
        sim.run()
        assert hits == [pytest.approx(5.0)]

    def test_milestone_already_crossed_fires_soon(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)

        def late_register():
            claim.add_milestone(95.0, lambda: hits.append(sim.now))

        sim.schedule(2.0, late_register)  # remaining=80 < 95 at t=2
        sim.run()
        assert hits and hits[0] == pytest.approx(2.0)

    def test_milestone_survives_pause_resume(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(40.0, lambda: hits.append(sim.now))  # at t=6 if unpaused
        sim.schedule(2.0, lambda: res.pause(claim))
        sim.schedule(5.0, lambda: res.activate(claim))
        sim.run()
        # paused 3s, so crossing shifts from 6.0 to 9.0
        assert hits == [pytest.approx(9.0)]

    def test_milestone_with_rate_change(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(100.0, lambda: None)
        claim.add_milestone(50.0, lambda: hits.append(sim.now))
        # A competing claim halves the rate from t=1.
        sim.schedule(1.0, lambda: res.submit(1000.0, lambda: None))
        sim.run(until=30.0)
        # 10 units by t=1, then 5/s: remaining to milestone = 40 -> t=9.
        assert hits == [pytest.approx(9.0)]

    def test_unfired_milestone_fires_at_completion(self):
        sim = Simulation()
        res = RateResource(sim, capacity=10.0)
        hits = []
        claim = res.submit(10.0, lambda: None)
        claim.add_milestone(0.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [pytest.approx(1.0)]


class TestCpuResource:
    def test_up_to_cores_full_speed(self):
        sim = Simulation()
        cpu = CpuResource(sim, cores=2)
        done = {}
        cpu.submit(10.0, lambda: done.setdefault("a", sim.now))
        cpu.submit(10.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_oversubscribed_shares(self):
        sim = Simulation()
        cpu = CpuResource(sim, cores=2)
        done = {}
        for name in ("a", "b", "c", "d"):
            cpu.submit(10.0, lambda n=name: done.setdefault(n, sim.now))
        sim.run()
        # 4 claims on 2 cores -> each at 0.5 core -> 20s.
        assert all(t == pytest.approx(20.0) for t in done.values())


class TestDiskResource:
    def test_bandwidth_sharing(self):
        sim = Simulation()
        disk = DiskResource(sim, bandwidth=100.0)
        done = {}
        disk.submit(100.0, lambda: done.setdefault("a", sim.now))
        disk.submit(300.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # a: shares 50/s until done at t=2; b: 200 left at t=2, then
        # alone at 100/s -> done at t=4.
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(4.0)
