"""Old-vs-new resource model differential suite.

The virtual-time fluid model in :mod:`repro.osmodel.resources` must be
*behaviorally equivalent* to the eager per-claim model it replaced
(kept verbatim in :mod:`tests.legacy_resources`): identical completion
times, identical milestone firing times, identical firing order.  The
randomized driver below throws seeded activate/pause/cancel/speed-
factor/milestone scripts at both implementations and compares the
recorded event streams.

The invariants checked here (and why they hold):

* **completion times** -- both models integrate the same piecewise-
  constant per-claim rate; the virtual-time model evaluates the same
  integral through one cumulative service function instead of n
  countdowns, so times agree to floating-point tolerance;
* **milestone times** -- a milestone at remaining=m is the crossing of
  ``finish_key - m`` in virtual time, the same instant the eager model
  computes as ``(remaining - m) / rate`` from its last settlement;
* **order** -- egalitarian sharing serves every active claim at one
  rate, so relative completion order among active claims is the order
  of their virtual finish keys, which rate changes cannot permute.
"""

import random

import pytest

from repro.osmodel.resources import CpuResource, RateResource
from repro.sim.engine import Simulation
from tests.legacy_resources import LegacyCpuResource, LegacyRateResource

#: absolute + relative tolerance for time comparisons: both models do
#: different but mathematically equivalent float arithmetic
TIME_TOL = 1e-6


class ScriptRunner:
    """Drive one resource implementation through an op script."""

    def __init__(self, resource_factory):
        self.sim = Simulation()
        self.resource = resource_factory(self.sim)
        self.claims = {}
        self.events = []

    def apply(self, at, op, *args):
        self.sim.run(until=at)
        getattr(self, op)(*args)

    def submit(self, cid, units, milestones):
        claim = self.resource.create(
            units,
            lambda cid=cid: self.events.append(("done", cid, self.sim.now)),
            label=f"c{cid}",
        )
        self.claims[cid] = claim
        self.resource.activate(claim)
        for idx, remaining_at in enumerate(milestones):
            claim.add_milestone(
                remaining_at,
                lambda cid=cid, idx=idx: self.events.append(
                    ("milestone", (cid, idx), self.sim.now)
                ),
            )

    def pause(self, cid):
        self.resource.pause(self.claims[cid])

    def resume(self, cid):
        self.resource.activate(self.claims[cid])

    def cancel(self, cid):
        self.resource.cancel(self.claims[cid])

    def speed(self, factor):
        self.resource.set_speed_factor(factor)

    def finish(self):
        self.sim.run(until=self.sim.now + 1e7)
        self.sim.run()
        return self.events


def random_script(seed, ops=60, max_units=500.0):
    """A seeded op script: list of (time, op, *args) tuples."""
    rng = random.Random(seed)
    script = []
    now = 0.0
    next_cid = 0
    live = []      # cids that may still be active
    paused = []
    for _ in range(ops):
        now += rng.uniform(0.0, 8.0)
        choice = rng.random()
        if choice < 0.45 or not live:
            milestones = sorted(
                (rng.uniform(0.0, max_units * 0.9) for _ in range(rng.randint(0, 2))),
                reverse=True,
            )
            script.append((now, "submit", next_cid, rng.uniform(1.0, max_units),
                           milestones))
            live.append(next_cid)
            next_cid += 1
        elif choice < 0.62:
            cid = rng.choice(live)
            script.append((now, "pause", cid))
            if cid not in paused:
                paused.append(cid)
        elif choice < 0.78 and paused:
            cid = paused.pop(rng.randrange(len(paused)))
            script.append((now, "resume", cid))
        elif choice < 0.88:
            cid = rng.choice(live)
            live.remove(cid)
            if cid in paused:
                paused.remove(cid)
            script.append((now, "cancel", cid))
        else:
            script.append((now, "speed", rng.choice([0.25, 0.5, 1.0, 2.0, 4.0])))
    return script


def run_both(script, new_factory, legacy_factory):
    new = ScriptRunner(new_factory)
    old = ScriptRunner(legacy_factory)
    for step in script:
        new.apply(step[0], step[1], *step[2:])
        old.apply(step[0], step[1], *step[2:])
    return new.finish(), old.finish()


def assert_equivalent(new_events, old_events):
    assert len(new_events) == len(old_events)
    new_times = {(kind, key): t for kind, key, t in new_events}
    old_times = {(kind, key): t for kind, key, t in old_events}
    assert new_times.keys() == old_times.keys()
    for key, old_t in old_times.items():
        assert new_times[key] == pytest.approx(old_t, rel=TIME_TOL, abs=TIME_TOL), key
    # Firing order: wherever the old model separates two consecutive
    # events by more than the comparison tolerance, the new model keeps
    # them in the same order.
    old_sorted = sorted(old_times, key=lambda key: old_times[key])
    for key_a, key_b in zip(old_sorted, old_sorted[1:]):
        if old_times[key_b] - old_times[key_a] > 10 * TIME_TOL:
            assert new_times[key_a] < new_times[key_b], (key_a, key_b)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_rate_resource_scripts(self, seed):
        script = random_script(seed)
        new_events, old_events = run_both(
            script,
            lambda sim: RateResource(sim, capacity=10.0),
            lambda sim: LegacyRateResource(sim, capacity=10.0),
        )
        assert new_events  # scripts long enough to complete work
        assert_equivalent(new_events, old_events)

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_cpu_resource_scripts(self, seed):
        # CpuResource has the kinked rate curve (flat up to `cores`,
        # then shared): exercises rate changes that do NOT change the
        # per-claim rate as well as ones that do.
        script = random_script(seed, max_units=120.0)
        new_events, old_events = run_both(
            script,
            lambda sim: CpuResource(sim, cores=4),
            lambda sim: LegacyCpuResource(sim, cores=4),
        )
        assert_equivalent(new_events, old_events)

    def test_dense_same_instant_batch(self):
        # Many equal claims submitted together complete at the same
        # instant in both models -- the batch-crossing path of the new
        # model against the per-event path of the old one.
        script = [(0.0, "submit", cid, 100.0, []) for cid in range(20)]
        new_events, old_events = run_both(
            script,
            lambda sim: RateResource(sim, capacity=10.0),
            lambda sim: LegacyRateResource(sim, capacity=10.0),
        )
        assert len(new_events) == 20
        assert_equivalent(new_events, old_events)
