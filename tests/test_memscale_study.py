"""The ``memscale`` memory-oversubscription study.

Wiring, mode validation, and the acceptance property the experiment
exists to demonstrate: admission-gated suspension manages Section
III-A's constraint (zero OOM kills, zero swap-exhaustion) while
ungated suspension under the same oversubscribed cell destroys work
through the OOM killer.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.memscale_study import (
    MODES,
    RESERVE_BYTES,
    SWAP_BYTES,
    _run_once,
    run_memscale_study,
)
from repro.experiments.runner import derive_seed


def _cell(mode: str, trackers: int = 25, num_jobs: int = 25):
    return _run_once(
        mode=mode,
        trackers=trackers,
        num_jobs=num_jobs,
        seed=derive_seed(
            12000, "memscale", trackers, mode, SWAP_BYTES, RESERVE_BYTES, 0
        ),
    )


class TestWiring:
    def test_report_shape(self):
        report = run_memscale_study(
            runs=1, cluster_sizes=[6], num_jobs=6,
            modes=["kill", "suspend-gated"],
        )
        text = report.render(plots=False)
        assert "memscale" in text
        assert "metrics digest" in text
        assert report.extras["modes"] == ["kill", "suspend-gated"]
        assert report.extras["swap_bytes"] == SWAP_BYTES
        metrics = report.extras["metrics"]
        assert set(metrics) == {6}
        assert set(metrics[6]) == {"kill", "suspend-gated"}
        assert metrics[6]["suspend-gated"]["oom_kills"] == [0.0]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            run_memscale_study(modes=["teleport"], cluster_sizes=[4])
        with pytest.raises(ConfigurationError):
            _run_once(mode="teleport", trackers=4, num_jobs=4, seed=1)

    def test_modes_registry(self):
        assert MODES == ("kill", "wait", "suspend-gated", "suspend-ungated")


@pytest.mark.integration
class TestAcceptance:
    """The acceptance cell: 25 swap-constrained trackers, hot load."""

    @pytest.fixture(scope="class")
    def cells(self):
        return {mode: _cell(mode) for mode in MODES}

    def test_gated_suspension_never_violates_the_constraint(self, cells):
        gated = cells["suspend-gated"]
        assert gated["oom_kills"] == 0.0
        assert gated["oom_raises"] == 0.0  # no SwapExhausted/OOM raises at all
        # The gate genuinely arbitrated (this is not a no-suspend run).
        assert gated["suspend_denials"] > 0
        assert gated["suspends_admitted"] == gated["preemptions"]

    def test_ungated_suspension_breaks_the_constraint(self, cells):
        ungated = cells["suspend-ungated"]
        # Section III-A violated: swap exhausts / the OOM killer fires.
        assert ungated["oom_kills"] > 0
        assert ungated["oom_raises"] >= ungated["oom_kills"]
        # The stacking thrashes swap far beyond the gated run.
        assert ungated["swap_out_mb"] > cells["suspend-gated"]["swap_out_mb"]

    def test_baselines_never_oom(self, cells):
        for mode in ("kill", "wait"):
            assert cells[mode]["oom_kills"] == 0.0

    def test_gated_small_jobs_competitive(self, cells):
        # Admission denials may cost small jobs queueing versus the
        # reckless ungated run, but never more than the kill/wait
        # spread of the same cell -- the safety is not bought with a
        # collapse of the very metric preemption exists to protect.
        gated = cells["suspend-gated"]["small_mean_sojourn"]
        others = [
            cells[m]["small_mean_sojourn"]
            for m in ("suspend-ungated", "kill", "wait")
        ]
        assert 0.0 < gated <= max(others) * 1.5
