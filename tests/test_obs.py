"""The run ledger, its streaming aggregation, and the observatory.

Three claims carry the subsystem:

* the ledger is **crash-tolerant**: a truncated or interleaved final
  line -- what a SIGKILLed writer leaves -- is skipped with a warning
  by every reader, never raised;
* :func:`repro.obs.replay` is a **pure fold**: replaying the file
  reconstructs exactly the state a live subscriber held, merged-sketch
  digest included, and that state agrees with the sweep's manifest;
* observation is **silent**: a sweep run with the ledger on returns
  results byte-identical to one run with it off, trace digests
  included.

Worker-fault cells live at module level so forked/spawned workers can
import them by module path.
"""

import io
import json
import os
import threading
import time
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.experiments.chaos import ChaosFault, make_plan
from repro.experiments.runner import (
    Cell,
    cell_cost,
    cell_key,
    run_cells,
    set_ledger,
    set_progress,
)
from repro.experiments.supervisor import SupervisorConfig, supervise_cells
from repro.obs import (
    LEDGER_FILENAME,
    SCHEMA_VERSION,
    ConsoleRenderer,
    Ledger,
    ObsServer,
    SweepState,
    iter_ledger,
    render_dashboard,
    replay,
    tail_ledger,
    watch,
)
from repro.telemetry.registry import MetricRegistry


def probe_cell(seed: int) -> dict:
    return {"seed": seed, "value": seed * 3, "events": 10.0 * (seed + 1)}


def exploding_cell(seed: int) -> None:
    raise ValueError(f"cell {seed} exploded")


def probes(n):
    return [
        Cell.make("tests.test_obs", "probe_cell", seed=i) for i in range(n)
    ]


def fast_config(**overrides):
    defaults = dict(
        max_retries=1, backoff_base=0.01, backoff_cap=0.05,
        heartbeat_interval=0.05, snapshot_every=None,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _sketch_dict(name: str, values) -> dict:
    registry = MetricRegistry()
    for value in values:
        registry.observe(name, value)
    return registry.to_dict()


# ----------------------------------------------------------------------
# Ledger file format
# ----------------------------------------------------------------------


class TestLedgerFile:
    def test_envelope_fields_and_monotone_seq(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path) as ledger:
            ledger.emit("sweep-start", total=2)
            ledger.emit("cell-start", index=0)
        records = list(iter_ledger(path))
        assert [r["event"] for r in records] == ["sweep-start", "cell-start"]
        for record in records:
            assert record["v"] == SCHEMA_VERSION
            assert record["pid"] == os.getpid()
            assert isinstance(record["t"], float)
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0]["total"] == 2

    def test_one_line_per_event(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path) as ledger:
            for i in range(5):
                ledger.emit("cell-finish", index=i)
        lines = open(path, "rb").read().splitlines(keepends=True)
        assert len(lines) == 5
        assert all(line.endswith(b"\n") for line in lines)
        assert all(json.loads(line) for line in lines)

    def test_pathless_ledger_feeds_subscribers_only(self, tmp_path):
        seen = []
        ledger = Ledger(None)
        ledger.subscribe(seen.append)
        ledger.emit("cell-start", index=3)
        assert seen[0]["event"] == "cell-start"
        assert seen[0]["index"] == 3
        assert list(tmp_path.iterdir()) == []

    def test_concurrent_appends_interleave_at_line_boundaries(
        self, tmp_path
    ):
        # Two handles on the same file, interleaved emits: O_APPEND
        # single-write semantics keep every line whole.
        path = str(tmp_path / "ledger.jsonl")
        a, b = Ledger(path), Ledger(path)
        for i in range(20):
            (a if i % 2 else b).emit("cell-finish", index=i, pad="x" * 200)
        a.close(), b.close()
        records = list(iter_ledger(path))
        assert sorted(r["index"] for r in records) == list(range(20))


# ----------------------------------------------------------------------
# Crash-tolerant reading
# ----------------------------------------------------------------------


class TestCrashTolerantReading:
    def _write(self, tmp_path, blob: bytes) -> str:
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "wb") as fh:
            fh.write(blob)
        return path

    def test_truncated_final_line_skipped_with_warning(
        self, tmp_path, capsys
    ):
        path = self._write(
            tmp_path,
            b'{"v":1,"seq":1,"event":"sweep-start","total":1}\n'
            b'{"v":1,"seq":2,"event":"cell-fin',  # SIGKILL mid-append
        )
        records = list(iter_ledger(path))
        assert [r["event"] for r in records] == ["sweep-start"]
        assert "incomplete final ledger line" in capsys.readouterr().err

    def test_corrupt_complete_line_skipped_with_warning(
        self, tmp_path, capsys
    ):
        path = self._write(
            tmp_path,
            b'{"v":1,"seq":1,"event":"sweep-start","total":1}\n'
            b'\x00\x17garbage{{{\n'
            b'{"v":1,"seq":3,"event":"sweep-finish"}\n',
        )
        records = list(iter_ledger(path))
        assert [r["event"] for r in records] == ["sweep-start", "sweep-finish"]
        assert "corrupt ledger line 2" in capsys.readouterr().err

    def test_future_schema_line_skipped(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            b'{"v":999,"seq":1,"event":"sweep-start"}\n'
            b'{"v":1,"seq":2,"event":"sweep-finish"}\n',
        )
        records = list(iter_ledger(path))
        assert [r["event"] for r in records] == ["sweep-finish"]
        assert "newer than this reader" in capsys.readouterr().err

    def test_replay_never_raises_on_damage(self, tmp_path):
        path = self._write(tmp_path, b"\xff\xfe not json at all")
        state = replay(path, warn=False)
        assert state.events_applied == 0
        assert not state.finished

    def test_tail_holds_back_partial_line_until_newline(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "wb") as fh:
            fh.write(b'{"v":1,"seq":1,"event":"cell-start","index":0}\n')
            fh.write(b'{"v":1,"seq":2,"event":"sweep-fin')
            fh.flush()
            got = []

            def feed():
                # Complete the line, then finish the file, while the
                # tailer below is mid-iteration.
                time.sleep(0.15)
                fh.write(b'ish"}\n')
                fh.flush()

            threading.Thread(target=feed, daemon=True).start()
            for record in tail_ledger(path, poll=0.02, warn=False):
                got.append(record["event"])
        assert got == ["cell-start", "sweep-finish"]

    def test_tail_stop_callback_ends_iteration(self, tmp_path):
        path = self._write(
            tmp_path, b'{"v":1,"seq":1,"event":"cell-start","index":0}\n'
        )
        stopped = {"n": 0}

        def stop():
            stopped["n"] += 1
            return stopped["n"] > 2

        got = list(tail_ledger(path, poll=0.01, stop=stop, warn=False))
        assert [r["event"] for r in got] == ["cell-start"]


# ----------------------------------------------------------------------
# Streaming aggregation
# ----------------------------------------------------------------------


class TestSweepState:
    def _start(self, state, total=4, workers=2):
        state.apply({
            "v": 1, "t": 0.0, "event": "sweep-start", "total": total,
            "workers": workers, "grid_digest": "abc", "experiment": "probe",
            "cells": [{"index": i, "key": f"k{i}", "label": f"cell {i}"}
                      for i in range(total)],
        })

    def test_progress_counts_and_attempts(self):
        state = SweepState()
        self._start(state)
        state.apply({"event": "cell-cached", "index": 0})
        state.apply({"event": "cell-start", "index": 1, "attempt": 0})
        state.apply({"event": "cell-start", "index": 2, "attempt": 0})
        state.apply({"event": "cell-retry", "index": 2, "attempt": 1,
                     "cause": "worker died"})
        state.apply({"event": "cell-start", "index": 2, "attempt": 1})
        state.apply({"event": "cell-finish", "index": 1, "cost": 5.0,
                     "t": 1.0})
        assert state.count("cached") == 1
        assert state.count("done") == 1
        assert state.count("running") == 1
        assert state.done == 2
        assert state.cells[2]["attempts"] == 2
        assert state.cells[2]["causes"] == ["worker died"]
        assert not state.finished

    def test_quarantine_and_finish(self):
        state = SweepState()
        self._start(state, total=2)
        state.apply({"event": "cell-quarantine", "index": 0, "attempts": 3,
                     "cause": "timeout", "causes": ["timeout"] * 3})
        state.apply({"event": "cell-finish", "index": 1, "t": 1.0})
        state.apply({"event": "sweep-finish", "t": 2.0,
                     "counters": {"quarantines": 1}})
        assert state.count("quarantined") == 1
        assert state.finished
        assert state.eta_seconds() == 0.0
        assert state.counters["quarantines"] == 1

    def test_rate_and_eta_are_cost_weighted(self):
        state = SweepState()
        self._start(state, total=10)
        # 4 finishes, one per second, 100 cost each -> 100 cost/s.
        for i in range(4):
            state.apply({"event": "cell-start", "index": i, "attempt": 0})
            state.apply({"event": "cell-finish", "index": i,
                         "cost": 100.0, "t": float(i)})
        assert state.rate() == pytest.approx(100.0)
        # 6 cells left at mean cost 100 -> 600 cost / 100 cost/s = 6 s.
        assert state.eta_seconds(now=3.0) == pytest.approx(6.0)

    def test_eta_unknowable_before_two_finishes(self):
        state = SweepState()
        self._start(state)
        assert state.eta_seconds() is None
        state.apply({"event": "cell-finish", "index": 0, "t": 1.0})
        assert state.eta_seconds() is None  # one sample anchors only

    def test_sketches_merge_incrementally_and_exactly(self):
        # The mid-sweep merged registry must equal a post-hoc merge of
        # the same shards -- the registry merge is exact and
        # order-insensitive, and the fold must not break that.
        shards = [
            _sketch_dict("sojourn", [1.0, 5.0]),
            _sketch_dict("sojourn", [120.0, 7.5, 3.0]),
            _sketch_dict("sojourn", [42.0]),
        ]
        state = SweepState()
        self._start(state, total=3)
        for i, shard in enumerate(shards):
            state.apply({"event": "cell-finish", "index": i, "t": float(i),
                         "sketch": shard})
        reference = MetricRegistry()
        for shard in reversed(shards):
            reference.merge(MetricRegistry.from_dict(shard))
        assert state.registry.digest() == reference.digest()
        summary = state.sketch_summary()
        assert summary["sojourn"]["count"] == 6
        assert summary["sojourn"]["p95"] >= summary["sojourn"]["p50"]

    def test_to_dict_snapshot_shape(self):
        state = SweepState()
        self._start(state)
        state.apply({"event": "worker-spawn", "slot": 0})
        state.apply({"event": "snapshot", "path": "x.midck",
                     "virtual_now": 900.0})
        state.apply({"event": "counters", "counters": {"retries": 2}})
        snap = state.to_dict(now=1.0)
        assert snap["total"] == 4
        assert snap["grid_digest"] == "abc"
        assert snap["progress"]["pending"] == 4
        assert snap["worker_events"] == {"spawns": 1}
        assert snap["snapshots"] == 1
        assert snap["supervisor"] == {"retries": 2}
        assert [c["index"] for c in snap["cells"]] == [0, 1, 2, 3]
        json.dumps(snap)  # must be JSON-serializable as-is


class TestCellCost:
    def test_dict_result_uses_events(self):
        assert cell_cost({"events": 250.0}) == 250.0

    def test_fallbacks(self):
        assert cell_cost({"makespan": 3.0}) == 1.0
        assert cell_cost(object()) == 1.0
        assert cell_cost({"events": 0}) == 1.0
        assert cell_cost({"events": "bogus"}) == 1.0


# ----------------------------------------------------------------------
# Runner integration: ledger events, replay == manifest
# ----------------------------------------------------------------------


class TestRunnerLedger:
    def test_serial_sweep_writes_deterministic_event_counts(
        self, tmp_path
    ):
        cache = str(tmp_path / "sweep")
        run_cells(probes(3), workers=1, cache_dir=cache)
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        assert state.event_counts == {
            "sweep-start": 1, "cell-start": 3, "cell-finish": 3,
            "sweep-finish": 1,
        }
        assert state.done == 3 and state.finished
        assert state.grid_digest

    def test_warm_cache_rerun_appends_cached_events(self, tmp_path):
        cache = str(tmp_path / "sweep")
        first = run_cells(probes(3), workers=1, cache_dir=cache)
        again = run_cells(probes(3), workers=1, cache_dir=cache)
        assert again == first
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        assert state.event_counts["cell-cached"] == 3
        assert state.event_counts["sweep-finish"] == 2
        assert state.done == 3

    def test_replay_agrees_with_manifest(self, tmp_path):
        cache = str(tmp_path / "sweep")
        cells = probes(4)
        run_cells(cells, workers=1, cache_dir=cache)
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert state.total == manifest["total"]
        assert state.done == manifest["done"]
        by_key = {c["key"]: c for c in state.to_dict()["cells"]}
        for entry in manifest["cells"]:
            assert entry["done"] == (
                by_key[entry["key"]]["state"] in ("done", "cached")
            )

    def test_explicit_ledger_path_without_cache_dir(self, tmp_path):
        path = str(tmp_path / "standalone.jsonl")
        set_ledger(path)
        try:
            run_cells(probes(2), workers=1)
        finally:
            set_ledger(None)
        state = replay(path, warn=False)
        assert state.done == 2 and state.finished

    def test_manifest_fresh_after_every_cell(self, tmp_path):
        """Satellite regression: a sweep killed mid-flight must leave a
        manifest whose done flags reflect every completed cell.  The
        second cell raising plays the part of the kill -- before the
        per-cell flush, the manifest on disk still said done=0."""
        cache = str(tmp_path / "sweep")
        cells = [
            Cell.make("tests.test_obs", "probe_cell", seed=0),
            Cell.make("tests.test_obs", "exploding_cell", seed=1),
        ]
        with pytest.raises(ValueError, match="exploded"):
            run_cells(cells, workers=1, cache_dir=cache)
        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["done"] == 1
        assert manifest["cells"][0]["done"] is True
        assert manifest["cells"][1]["done"] is False


# ----------------------------------------------------------------------
# Supervised integration: chaos, retries, quarantine in the ledger
# ----------------------------------------------------------------------


class TestSupervisedLedger:
    def test_ledger_counts_match_supervisor_stats_under_chaos(
        self, tmp_path
    ):
        cells = probes(4)
        kill_once = make_plan({
            (cell_key(cells[1]), 0): ChaosFault("kill"),
        })
        cache = str(tmp_path / "sweep")
        os.makedirs(cache)
        sweep = supervise_cells(
            cells, list(range(4)), workers=2,
            config=fast_config(chaos=kill_once),
            cache_dir=cache,
            ledger=Ledger(os.path.join(cache, LEDGER_FILENAME)),
        )
        assert sweep.quarantined == []
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        assert state.event_counts["cell-retry"] == sweep.stats["retries"] == 1
        assert state.event_counts["worker-death"] == 1
        assert state.event_counts["cell-finish"] == (
            sweep.stats["cells_completed"] == 4 and 4
        )
        assert state.cells[1]["attempts"] == 2
        assert state.worker_events["deaths"] == 1

    def test_quarantine_event_and_live_manifest_flush(self, tmp_path):
        from repro.errors import QuarantineError

        cells = probes(2) + [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=5),
        ]
        cache = str(tmp_path / "sweep")
        with pytest.raises(QuarantineError):
            run_cells(cells, workers=2, cache_dir=cache,
                      supervise=fast_config(max_retries=0))
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        assert state.event_counts["cell-quarantine"] == 1
        assert state.cells[2]["state"] == "quarantined"
        assert state.cells[2]["causes"]
        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["quarantined"] == 1
        assert manifest["done"] == 2


# ----------------------------------------------------------------------
# Observation is silent: ledger-on == ledger-off, bit for bit
# ----------------------------------------------------------------------


def _scale_cells():
    from repro.experiments.runner import derive_seed

    return [
        Cell.make(
            "repro.experiments.scale_study", "_run_once",
            scenario="baseline", primitive_name=p, trackers=5,
            num_jobs=5,
            seed=derive_seed(9100, "scale", "baseline", 5, p, 0),
            trace=True,
        )
        for p in ("suspend", "kill")
    ]


def _memscale_cells():
    from repro.experiments.runner import derive_seed

    return [
        Cell.make(
            "repro.experiments.memscale_study", "_run_once",
            mode="suspend-gated", trackers=5, num_jobs=5,
            seed=derive_seed(9200, "memscale", 5, 0), trace=True,
        )
    ]


def _fig2_cells():
    from repro.experiments.harness import TwoJobHarness

    params = TwoJobHarness(
        primitive="suspend", progress_at_launch=0.5, runs=1, base_seed=611
    )._cell_params()
    return [
        Cell.make(
            "repro.experiments.harness", "_harness_cell", seed=611, **params
        )
    ]


class TestLedgerSilence:
    """The determinism rule: the ledger observes, never participates."""

    def _differential(self, cells, tmp_path):
        baseline = run_cells(cells, workers=1)          # no ledger at all
        path = str(tmp_path / "on.jsonl")
        set_ledger(path)
        set_progress(True)  # renderer subscribed too -- still silent
        try:
            observed = run_cells(cells, workers=1)
        finally:
            set_ledger(None)
            set_progress(False)
        assert os.path.getsize(path) > 0
        return baseline, observed

    def test_scale_cells_identical_with_ledger_on(self, tmp_path):
        baseline, observed = self._differential(_scale_cells(), tmp_path)
        assert observed == baseline
        for pair in zip(baseline, observed):
            assert pair[0]["trace_digest"] == pair[1]["trace_digest"]

    def test_memscale_cells_identical_with_ledger_on(self, tmp_path):
        baseline, observed = self._differential(_memscale_cells(), tmp_path)
        assert observed == baseline
        assert observed[0]["trace_digest"] == baseline[0]["trace_digest"]

    def test_fig2_cells_identical_with_ledger_on(self, tmp_path):
        baseline, observed = self._differential(_fig2_cells(), tmp_path)
        assert observed == baseline

    def test_sketch_digest_survives_the_ledger_round_trip(self, tmp_path):
        # The sketch a cell-finish event carries, folded by replay,
        # digests identically to the result's own sketch -- JSON
        # round-tripping loses nothing the merge needs.
        cells = _scale_cells()
        cache = str(tmp_path / "sweep")
        results = run_cells(cells, workers=1, cache_dir=cache)
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        reference = MetricRegistry()
        for result in results:
            reference.merge(MetricRegistry.from_dict(result["sketch"]))
        assert state.registry.digest() == reference.digest()


# ----------------------------------------------------------------------
# Console renderer
# ----------------------------------------------------------------------


class TestConsoleRenderer:
    def test_lifecycle_lines(self):
        out = io.StringIO()
        renderer = ConsoleRenderer(out=out)
        ledger = Ledger(None)
        ledger.subscribe(renderer)
        ledger.emit("sweep-start", total=2, workers=1, cached=1,
                    cells=[{"index": i, "key": f"k{i}", "label": f"c{i}"}
                           for i in range(2)])
        ledger.emit("cell-cached", index=0)
        ledger.emit("cell-start", index=1, label="c1", attempt=0)
        ledger.emit("cell-finish", index=1, label="c1", duration_s=0.25,
                    cost=1.0)
        ledger.emit("sweep-finish", done=2, total=2)
        text = out.getvalue()
        assert "[sweep] 2 cells over 1 worker(s)" in text
        assert "[cache] 1/2 cells already checkpointed" in text
        assert "start c1" in text
        assert "done c1 in 0.2s" in text
        assert "[sweep] finished: 2/2 cells done" in text

    def test_supervisor_lines(self):
        out = io.StringIO()
        renderer = ConsoleRenderer(out=out)
        renderer({"event": "cell-retry", "index": 3, "cause": "worker died",
                  "attempt": 1, "max_retries": 2})
        renderer({"event": "cell-quarantine", "index": 3, "attempts": 3,
                  "cause": "timeout"})
        renderer({"event": "worker-death", "slot": 0, "cause": "died",
                  "deaths": 1, "death_cap": 3})
        renderer({"event": "worker-retire", "slot": 0, "deaths": 4,
                  "remaining": 1})
        text = out.getvalue()
        assert "cell 3 failed (worker died); retry 1/2 queued" in text
        assert "quarantined after 3 attempt(s): timeout" in text
        assert "shard 0 died; restarting (death 1/3)" in text
        assert "retired after 4 consecutive deaths" in text


# ----------------------------------------------------------------------
# Terminal dashboard
# ----------------------------------------------------------------------


class TestWatch:
    def test_render_dashboard_frame(self, tmp_path):
        cache = str(tmp_path / "sweep")
        run_cells(probes(3), workers=1, cache_dir=cache)
        state = replay(os.path.join(cache, LEDGER_FILENAME), warn=False)
        frame = render_dashboard(state.to_dict(now=time.time()))
        assert "FINISHED" in frame
        assert "3/3 cells" in frame
        assert "[x]" in frame

    def test_watch_once_over_sweep_dir(self, tmp_path):
        cache = str(tmp_path / "sweep")
        run_cells(probes(2), workers=1, cache_dir=cache)
        out = io.StringIO()
        assert watch(cache, once=True, out=out) == 0
        assert "2/2 cells" in out.getvalue()

    def test_watch_missing_target_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no ledger"):
            watch(str(tmp_path / "nowhere"), once=True, out=io.StringIO())

    def test_cli_watch_once(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "sweep")
        run_cells(probes(2), workers=1, cache_dir=cache)
        assert main(["watch", cache, "--once"]) == 0
        assert "2/2 cells" in capsys.readouterr().out


# ----------------------------------------------------------------------
# HTTP observatory: /state + SSE against a live supervised sweep
# ----------------------------------------------------------------------


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


class TestObsServer:
    def test_state_and_sse_against_live_parallel_sweep(self, tmp_path):
        cache = str(tmp_path / "sweep")
        os.makedirs(cache)
        ledger_file = os.path.join(cache, LEDGER_FILENAME)
        cells = probes(8)
        error = []

        def sweep():
            try:
                run_cells(cells, workers=4, cache_dir=cache,
                          supervise=fast_config())
            except BaseException as exc:  # pragma: no cover - diagnostics
                error.append(exc)

        with ObsServer(ledger_file) as server:
            runner_thread = threading.Thread(target=sweep)
            runner_thread.start()
            # Live probe: /state must answer while cells are in flight
            # (possibly before the first event lands -- that's an
            # empty-but-valid snapshot, never an error).
            mid = _get_json(server.url + "/state")
            assert "progress" in mid and "eta_seconds" in mid
            runner_thread.join(timeout=120)
            assert not runner_thread.is_alive() and not error

            deadline = time.monotonic() + 10
            while True:
                final = _get_json(server.url + "/state")
                if final["finished"] or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert final["finished"] and final["done"] == 8
            assert final["rate_cost_per_s"] >= 0.0
            assert {c["state"] for c in final["cells"]} == {"done"}

            # SSE: the full backfilled story, one frame per record.
            events = []
            request = urllib.request.Request(server.url + "/events")
            with urllib.request.urlopen(request, timeout=10) as stream:
                for raw in stream:
                    line = raw.decode("utf-8").strip()
                    if line.startswith("event:"):
                        events.append(line.split(":", 1)[1].strip())
                    if events and events[-1] == "sweep-finish":
                        break
            assert events[0] == "sweep-start"
            assert events.count("cell-finish") == 8
            assert events[-1] == "sweep-finish"

            # Replay of the same file equals what the server folded.
            assert replay(ledger_file, warn=False).to_dict(
                now=0.0
            )["event_counts"] == final["event_counts"]

    def test_dashboard_html_and_unknown_path(self, tmp_path):
        ledger_file = str(tmp_path / "ledger.jsonl")
        Ledger(ledger_file).close()
        with ObsServer(ledger_file) as server:
            with urllib.request.urlopen(server.url + "/", timeout=10) as r:
                body = r.read().decode("utf-8")
            assert "repro sweep observatory" in body
            assert "EventSource('/events')" in body
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/nope", timeout=10)
            assert excinfo.value.code == 404
