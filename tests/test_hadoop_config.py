"""HadoopConfig validation matrix and replace()."""

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.config import HadoopConfig


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("heartbeat_interval", 0.0),
            ("heartbeat_interval", -1.0),
            ("map_slots", 0),
            ("reduce_slots", -1),
            ("oob_heartbeat_latency", -0.1),
            ("rpc_latency", -0.1),
            ("jvm_startup_time", -1.0),
            ("task_finalize_time", -1.0),
            ("task_cleanup_duration", -1.0),
            ("job_setup_duration", -1.0),
            ("job_cleanup_duration", -1.0),
            ("jvm_base_memory", -1),
            ("child_heap_limit", 0),
            ("max_suspended_per_tracker", -1),
            ("sort_rate", 0.0),
            ("task_time_jitter", 1.0),
            ("task_time_jitter", -0.1),
            ("jvm_heap_slack", -0.5),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            HadoopConfig(**{field: value})

    def test_defaults_valid(self):
        config = HadoopConfig()
        config.validate()  # no raise

    def test_replace_revalidates(self):
        config = HadoopConfig()
        with pytest.raises(ConfigurationError):
            config.replace(map_slots=0)

    def test_replace_copies(self):
        config = HadoopConfig()
        other = config.replace(map_slots=4)
        assert other.map_slots == 4
        assert config.map_slots == 1
