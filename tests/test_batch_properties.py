"""Property suite for batched heartbeat dispatch (Hypothesis).

Three layers of invariants, each randomized over its whole input
space rather than pinned to a handful of seeds:

* **engine batch-id fold** -- for any script of (time, batch_key)
  schedules, events fire in timestamp order with FIFO order *within*
  a timestamp pinned to insertion order, and batch ids partition the
  fired sequence into exactly the maximal runs of consecutive
  same-instant same-key events (``None`` keys never coalesce);
* **structure-of-arrays coherence** -- stop a live replay cell at an
  arbitrary mid-flight instant: every TIP's object view (state,
  tracker binding, full seconds) must agree with its slot in the
  job's :class:`~repro.hadoop.job.JobHotArrays`, the cached
  remaining-work/schedulable/pending-aux aggregates must equal a
  from-scratch recompute, and every tracker's
  :class:`~repro.hadoop.tasktracker.AttemptStateTable` must agree
  with the live attempt objects and its own population counts;
* **dispatch fold** -- for any small workload (seed, scenario,
  primitive, phase count), the batched and unbatched runs produce
  identical TraceLog digests: same-instant heartbeats folded through
  one repaired batch context answer exactly like heartbeats handled
  one rebuild at a time, in the same FIFO order.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import derive_seed
from repro.experiments.scale_study import _build_run
from repro.experiments.scale_study import _run_once as scale_run_once
from repro.hadoop.job import JobState
from repro.hadoop.states import (
    ATTEMPT_STATE_CODE,
    TIP_STATE_CODE,
    AttemptState,
    TipState,
)
from repro.hadoop.tasktracker import AttemptStateTable
from repro.sim.engine import Simulation

# -- engine batch-id fold -----------------------------------------------------

#: (time, batch_key) schedule scripts; a few distinct times and keys
#: are enough to produce every adjacency pattern that matters
SCRIPT = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.sampled_from([None, "hb", "other"]),
    ),
    min_size=1,
    max_size=24,
)


@given(script=SCRIPT)
def test_engine_batch_ids_partition_same_instant_key_runs(script):
    sim = Simulation()
    fired = []
    for insertion, (time, key) in enumerate(script):
        sim.schedule_at(
            float(time),
            (lambda t=time, k=key, i=insertion:
             fired.append((t, k, i, sim.batch_id))),
            label="script",
            batch_key=key,
        )
    sim.run()

    assert len(fired) == len(script)
    # Timestamp order, FIFO within a timestamp: the fired sequence is
    # the script stably sorted by time alone.
    assert [(t, k, i) for t, k, i, _ in fired] == sorted(
        [(float(t), k, i) for i, (t, k) in enumerate(script)],
        key=lambda item: item[0],
    )
    # Batch ids partition the sequence into maximal runs of adjacent
    # same-instant same-non-None-key events; everything else (key
    # change, time change, None key) starts a fresh batch.
    for prev, cur in zip(fired, fired[1:]):
        prev_t, prev_k, _, prev_b = prev
        cur_t, cur_k, _, cur_b = cur
        coalesce = cur_t == prev_t and cur_k == prev_k and cur_k is not None
        if coalesce:
            assert cur_b == prev_b, f"run broken: {prev} -> {cur}"
        else:
            assert cur_b != prev_b, f"spurious coalesce: {prev} -> {cur}"


@given(script=SCRIPT, data=st.data())
def test_engine_fifo_within_timestamp_follows_insertion_order(script, data):
    """Permuting whole-script insertion order permutes same-instant
    fire order the same way: arrival order IS the processing order."""
    order = data.draw(st.permutations(range(len(script))))

    def fire_sequence(indices):
        sim = Simulation()
        fired = []
        for insertion in indices:
            time, key = script[insertion]
            sim.schedule_at(
                float(time),
                lambda i=insertion: fired.append(i),
                label="script",
                batch_key=key,
            )
        sim.run()
        return fired

    base = fire_sequence(range(len(script)))
    permuted = fire_sequence(order)
    # Within each timestamp the fired order equals the insertion
    # order -- so the permuted run's per-timestamp order is exactly
    # the permutation's order restricted to that timestamp.
    by_time = {}
    for insertion, (time, _) in enumerate(script):
        by_time.setdefault(time, set()).add(insertion)
    for members in by_time.values():
        assert [i for i in base if i in members] == sorted(members)
        assert [i for i in permuted if i in members] == [
            i for i in order if i in members
        ]


# -- AttemptStateTable counts -------------------------------------------------

STATES = list(AttemptState)

#: op scripts: True = register a new attempt in a random state,
#: False = transition a random existing attempt to a random state
TABLE_OPS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=10 ** 6),
              st.sampled_from(STATES)),
    max_size=60,
)


@given(ops=TABLE_OPS)
def test_attempt_state_table_counts_match_scan(ops):
    table = AttemptStateTable()
    mirror = []  # slot -> AttemptState, the brute-force view
    for register, pick, state in ops:
        if register or not mirror:
            index = table.register(f"attempt_{len(mirror)}", state)
            assert index == len(mirror)
            mirror.append(state)
        else:
            index = pick % len(mirror)
            table.transition(index, mirror[index], state)
            mirror[index] = state
    assert len(table) == len(mirror)
    for state in STATES:
        assert table.count(state) == sum(1 for s in mirror if s is state)
    assert list(table.codes) == [ATTEMPT_STATE_CODE[s] for s in mirror]


# -- structure-of-arrays coherence --------------------------------------------


def _assert_job_coherent(job):
    hot = job.hot
    for tip in job.all_tips():
        assert tip.hot is hot and tip.hot_index >= 0
        slot = tip.hot_index
        assert hot.state_codes[slot] == TIP_STATE_CODE[tip.state]
        assert hot.trackers[slot] == tip.tracker
        assert hot.full_seconds[slot] == tip.full_seconds
    # Cached aggregates == from-scratch recompute (identical floats:
    # the cache fills via the same summation order as this loop).
    remaining = 0.0
    for i in range(hot.num_work):
        p = hot.progress[i]
        if p < 1.0:
            remaining += hot.full_seconds[i] * (1.0 - p)
    assert job.remaining_work_seconds() == remaining
    expect_schedulable = (
        [tip for tip in job.tips if tip.state is TipState.UNASSIGNED]
        if job.state is JobState.RUNNING
        else []
    )
    assert list(job.schedulable_tips()) == expect_schedulable
    # pending_aux_tip's documented brute-force definition: setup
    # first, then cleanup, neither when nothing awaits launch.
    if job.setup_pending:
        expect_aux = job.setup_tip
    elif job.cleanup_pending:
        expect_aux = job.cleanup_tip
    else:
        expect_aux = None
    assert job.pending_aux_tip() is expect_aux


def _assert_tracker_coherent(tracker):
    table = tracker.attempt_table
    # Internal consistency: the counts array is the code histogram.
    for state in STATES:
        code = ATTEMPT_STATE_CODE[state]
        assert table.counts[code] == sum(
            1 for c in table.codes if c == code
        )
    # Live attempts of this incarnation write through to this table.
    for attempt in tracker.attempts.values():
        if attempt._table is table:
            assert (
                table.codes[attempt._table_index]
                == ATTEMPT_STATE_CODE[attempt.state]
            )


@pytest.mark.integration
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed_salt=st.integers(min_value=0, max_value=50),
    stop_at=st.floats(min_value=5.0, max_value=1500.0),
    scenario=st.sampled_from(["baseline", "steady"]),
    phases=st.sampled_from([0, 2]),
)
def test_soa_views_coherent_mid_flight(seed_salt, stop_at, scenario, phases):
    cluster, _ = _build_run(
        scenario, "suspend", 8, 6,
        derive_seed(9000, "scale", scenario, 8, "suspend", seed_salt),
        heartbeat_phases=phases, batch_heartbeats=True,
    )
    cluster.sim.run(until=stop_at)
    for job in cluster.jobtracker.jobs.values():
        _assert_job_coherent(job)
    for tracker in cluster.trackers.values():
        _assert_tracker_coherent(tracker)


# -- dispatch fold ------------------------------------------------------------


@pytest.mark.integration
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed_salt=st.integers(min_value=0, max_value=50),
    scenario=st.sampled_from(["baseline", "shuffle-heavy", "steady"]),
    primitive=st.sampled_from(["wait", "kill", "suspend"]),
    phases=st.sampled_from([0, 1, 4]),
)
def test_batched_fold_matches_unbatched(seed_salt, scenario, primitive,
                                        phases):
    seed = derive_seed(9000, "scale", scenario, 6, primitive, seed_salt)

    def run(batched):
        return scale_run_once(
            scenario=scenario, primitive_name=primitive, trackers=6,
            num_jobs=5, seed=seed, trace=True,
            heartbeat_phases=phases, batch_heartbeats=batched,
        )

    batched, unbatched = run(True), run(False)
    assert batched["trace_digest"] == unbatched["trace_digest"]
    assert batched["sketch"] == unbatched["sketch"]
