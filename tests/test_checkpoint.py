"""The checkpoint subsystem: snapshot/restore round trips, forking,
version gating, file format and per-cell sweep caching.

The headline invariant under test is **replay identity**: a simulation
restored from a mid-flight checkpoint must finish event-for-event
identically to the run that wrote it -- same TraceLog digest, same
metrics, byte for byte.
"""

import json
import os

import pytest

from repro.checkpoint import (
    fork,
    load,
    read_header,
    restore,
    save,
    schema_fingerprint,
    snapshot,
    validate_header,
)
from repro.checkpoint.core import FORMAT_VERSION, MAGIC, Checkpoint
from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
)
from repro.sim.engine import Simulation


class Ticker:
    """Self-rescheduling chain that records RNG draws into the trace.

    Module-level (not a closure) so it pickles; each fire draws from a
    named stream and stamps the value into the trace log, making the
    TraceLog digest sensitive to both event ordering *and* RNG state.
    """

    def __init__(self, sim, draws):
        self.sim = sim
        self.draws = draws
        self.values = []

    def __call__(self):
        value = round(self.sim.rng.stream("ticker").random(), 12)
        self.values.append(value)
        self.sim.trace_log.record(self.sim.now, "draw", value=value)
        if len(self.values) < self.draws:
            self.sim.schedule(1.0, self, label="tick")


def _build_ticker_sim(seed=7, draws=12):
    sim = Simulation(seed=seed, trace=True)
    ticker = Ticker(sim, draws)
    sim.schedule(1.0, ticker, label="tick")
    return sim, ticker


def _find_ticker(sim):
    """The restored sim's Ticker (reachable only through the heap)."""
    for _, _, handle in sim._heap:
        if isinstance(handle.callback, Ticker):
            return handle.callback
    raise AssertionError("no Ticker pending in restored simulation")


class TestEngineRoundTrip:
    def test_restored_run_replays_identically(self):
        sim, ticker = _build_ticker_sim()
        sim.run(until=4.5)
        checkpoint = snapshot(sim)
        sim.run()  # the unbroken reference finishes first

        restored = restore(checkpoint)
        assert restored.now == 4.5
        restored.run()

        assert restored.trace_log.digest() == sim.trace_log.digest()
        assert restored.events_fired == sim.events_fired
        assert restored.now == sim.now

    def test_restore_twice_yields_disjoint_simulations(self):
        sim, _ = _build_ticker_sim()
        sim.run(until=3.5)
        checkpoint = snapshot(sim)
        first, second = restore(checkpoint), restore(checkpoint)
        first.run()
        assert second.pending_events > 0  # untouched by first's run
        second.run()
        assert first.trace_log.digest() == second.trace_log.digest()

    def test_snapshot_does_not_perturb_the_running_sim(self):
        sim, ticker = _build_ticker_sim()
        sim.run(until=4.5)
        before = (sim.now, sim.pending_events, sim.events_fired,
                  sim.heap_size, list(ticker.values))
        snapshot(sim)
        after = (sim.now, sim.pending_events, sim.events_fired,
                 sim.heap_size, list(ticker.values))
        assert before == after

    def test_deferred_reschedule_survives_round_trip(self):
        # A deferred handle's heap entry is stale by design (lazy
        # cancellation); the restore path must re-point it or the
        # event fires at its *old* time.
        sim = Simulation(seed=1, trace=True)
        ticker = Ticker(sim, 3)
        handle = sim.schedule(2.0, ticker, label="tick")
        sim.reschedule(handle, 6.0)
        restored = restore(snapshot(sim))
        sim.run()
        restored.run()
        assert restored.trace_log.digest() == sim.trace_log.digest()

    def test_unpicklable_state_raises_snapshot_error(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)  # closures cannot persist
        with pytest.raises(SnapshotError, match="not picklable"):
            snapshot(sim)

    def test_snapshot_at_fires_as_a_labelled_event(self, tmp_path):
        path = str(tmp_path / "mid.ck")
        sim, _ = _build_ticker_sim()
        sim.snapshot_at(4.5, path)
        sim.run()
        assert os.path.exists(path)
        header = read_header(path)
        assert header["layers"]["engine"]["now"] == 4.5


class TestForking:
    def test_branches_share_history_and_diverge_after(self):
        sim, ticker = _build_ticker_sim(draws=20)
        sim.run(until=8.5)
        prefix = list(ticker.values)
        checkpoint = snapshot(sim)

        branches = fork(checkpoint, 3)
        tickers = [_find_ticker(branch) for branch in branches]
        for branch in branches:
            branch.run()

        for branch_ticker in tickers:
            assert branch_ticker.values[: len(prefix)] == prefix
        suffixes = {tuple(t.values[len(prefix):]) for t in tickers}
        assert len(suffixes) == len(tickers)  # independent futures

    def test_vary_mutates_each_branch_in_process(self):
        sim, _ = _build_ticker_sim()
        sim.run(until=2.5)
        checkpoint = snapshot(sim)

        def shorten(branch, index):  # closures are fine here
            _find_ticker(branch).draws = 5 + index

        branches = fork(checkpoint, 2, vary=shorten)
        assert [_find_ticker(b).draws for b in branches] == [5, 6]

    def test_fork_requires_a_branch(self):
        sim, _ = _build_ticker_sim()
        with pytest.raises(SnapshotError):
            fork(snapshot(sim), 0)


class TestFileFormat:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "sim.ck")
        sim, _ = _build_ticker_sim()
        sim.run(until=3.5)
        save(sim, path)
        checkpoint = load(path)
        sim.run()
        restored = restore(checkpoint)
        restored.run()
        assert restored.trace_log.digest() == sim.trace_log.digest()

    def test_header_readable_without_unpickling(self, tmp_path):
        path = str(tmp_path / "sim.ck")
        sim, _ = _build_ticker_sim(seed=11)
        sim.run(until=2.5)
        save(sim, path, meta={"kind": "ticker"})
        header = read_header(path)
        assert header["format"] == FORMAT_VERSION
        assert header["schema"] == schema_fingerprint()
        assert header["meta"] == {"kind": "ticker"}
        assert header["layers"]["rng"]["master_seed"] == 11
        assert header["layers"]["engine"]["pending_events"] == 1

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "not.ck")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\x00" * 32)
        with pytest.raises(SnapshotFormatError):
            read_header(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "trunc.ck")
        sim, _ = _build_ticker_sim()
        save(sim, path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:6])
        with pytest.raises(SnapshotFormatError):
            load(path)

    def test_truncated_payload_fails_at_restore(self, tmp_path):
        path = str(tmp_path / "trunc.ck")
        sim, _ = _build_ticker_sim()
        save(sim, path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="corrupt"):
            restore(load(path))

    def test_format_version_mismatch_rejected(self):
        header = {"format": FORMAT_VERSION + 1,
                  "schema": schema_fingerprint()}
        with pytest.raises(SnapshotVersionError, match="format"):
            validate_header(header)

    def test_schema_drift_rejected(self):
        sim, _ = _build_ticker_sim()
        checkpoint = snapshot(sim)
        stale = Checkpoint(
            header={**checkpoint.header, "schema": "0" * 16},
            payload=checkpoint.payload,
        )
        with pytest.raises(SnapshotVersionError, match="schema"):
            restore(stale)

    def test_magic_prefixes_the_file(self, tmp_path):
        path = str(tmp_path / "sim.ck")
        sim, _ = _build_ticker_sim()
        save(sim, path)
        with open(path, "rb") as fh:
            assert fh.read(4) == MAGIC


class TestRepresentativeCells:
    """One full snapshot->restore->replay per stateful stack.

    These are the acceptance cells: the restored finish must agree
    with the unbroken finish on the TraceLog digest and every metric.
    """

    @pytest.mark.parametrize("kind", ["fig2", "scale", "memscale"])
    def test_resume_matches_unbroken_run(self, kind, tmp_path):
        from repro.checkpoint.cells import checkpoint_cell, resume_cell

        path = str(tmp_path / f"{kind}.ck")
        unbroken = checkpoint_cell(kind, path)
        resumed = resume_cell(path)
        assert resumed == unbroken
        assert "trace_digest" in resumed

    def test_unknown_cell_kind_rejected(self):
        from repro.checkpoint.cells import build_cell
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown"):
            build_cell("fig999")


class TestSweepCaching:
    """run_cells per-cell checkpointing: kill/resume a sweep."""

    def _cells(self):
        from repro.experiments.runner import Cell

        return [
            Cell.make("repro.experiments.runner", "derive_seed",
                      base_seed=base)
            for base in range(5)
        ]

    def test_killed_sweep_resumes_identically(self, tmp_path):
        from repro.experiments.runner import (
            _cache_path,
            run_cells,
        )

        cells = self._cells()
        cache = str(tmp_path / "sweep")
        reference = run_cells(cells, cache_dir=cache)
        # simulate a mid-sweep kill: two results never got written
        os.remove(_cache_path(cache, cells[1]))
        os.remove(_cache_path(cache, cells[3]))
        resumed = run_cells(cells, cache_dir=cache)
        assert resumed == reference
        assert run_cells(cells) == reference  # cache off: same values

    def test_manifest_inventories_the_sweep(self, tmp_path):
        from repro.experiments.runner import run_cells

        cache = str(tmp_path / "sweep")
        run_cells(self._cells(), cache_dir=cache)
        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["total"] == 5
        assert manifest["done"] == 5
        assert all(entry["done"] for entry in manifest["cells"])

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        from repro.experiments.runner import _cache_path, run_cells

        cells = self._cells()
        cache = str(tmp_path / "sweep")
        reference = run_cells(cells, cache_dir=cache)
        with open(_cache_path(cache, cells[2]), "wb") as fh:
            fh.write(b"garbage")
        assert run_cells(cells, cache_dir=cache) == reference

    def test_cache_distinguishes_params(self, tmp_path):
        from repro.experiments.runner import Cell, cell_key

        a = Cell.make("m", "f", seed=1)
        b = Cell.make("m", "f", seed=2)
        assert cell_key(a) != cell_key(b)
        assert cell_key(a) == cell_key(Cell.make("m", "f", seed=1))
