"""The fault-injection subsystem: plans, injector, scenarios, study."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    build_scenario,
    list_scenarios,
    random_plan,
)
from repro.hadoop.job import JobState
from repro.sim.rng import RngRegistry
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name="job", tasks=4, input_mb=60):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                     output_bytes=0, name=f"{name}-{i}")
            for i in range(tasks)
        ],
    )


def fault_cluster(seed=19, **overrides):
    defaults = dict(tracker_expiry_interval=6.0, map_slots=2)
    defaults.update(overrides)
    return quick_cluster(num_nodes=2, seed=seed, **defaults)


class TestFaultPlan:
    def test_builders_chain_and_order(self):
        plan = (
            FaultPlan()
            .fail_task(at=30.0)
            .crash(at=10.0, host="node00", restart_after=20.0)
            .slow_node(at=5.0, host="node01", factor=0.5)
        )
        assert [e.kind for e in plan] == [
            FaultKind.SLOW_NODE,
            FaultKind.NODE_CRASH,
            FaultKind.TASK_FAIL,
        ]
        assert len(plan) == 3
        assert "node-crash" in plan.describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=-1.0, kind=FaultKind.TASK_FAIL)
        with pytest.raises(ConfigurationError):
            FaultPlan().slow_node(at=0.0, host="n", factor=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan().crash(at=0.0, host="")
        with pytest.raises(ConfigurationError):
            FaultPlan().corrupt_cache(at=0.0, host="n", fraction=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(at=1.0, kind=FaultKind.NODE_CRASH, host="n",
                       duration=-3.0)

    def test_random_plan_is_seed_stable(self):
        def draw():
            rng = RngRegistry(99).stream("faults-plan")
            plan = random_plan(rng, ["a", "b"], horizon=100.0, crashes=2,
                               stragglers=1, task_failures=3)
            return [(e.at, e.kind, e.host, e.factor) for e in plan]

        assert draw() == draw()
        with pytest.raises(ConfigurationError):
            random_plan(RngRegistry(1).stream("x"), [], horizon=10.0)


class TestScenarios:
    def test_registry_lists_known_scenarios(self):
        names = list_scenarios()
        for expected in ("node-crash", "straggler", "transient-failure",
                         "cache-corruption", "none"):
            assert expected in names

    def test_build_scenario_validates(self):
        with pytest.raises(ConfigurationError):
            build_scenario("no-such-scenario", ["node00"])
        with pytest.raises(ConfigurationError):
            build_scenario("node-crash", [])
        plan = build_scenario("node-crash", ["node00", "node01"])
        assert plan.ordered()[0].host == "node01"


class TestInjector:
    def test_slow_node_degrades_and_heals(self):
        cluster = fault_cluster()
        cluster.submit_job(job_spec())
        plan = FaultPlan().slow_node(at=2.0, host="node01", factor=0.25,
                                     duration=4.0)
        injector = FaultInjector(cluster, plan)
        injector.install()
        cluster.start()
        cluster.sim.run(until=3.0)
        kernel = cluster.kernel_of("node01")
        assert kernel.cpu.speed_factor == 0.25
        assert kernel.disk.read_stream.speed_factor == 0.25
        cluster.sim.run(until=7.0)
        assert kernel.cpu.speed_factor == 1.0
        assert injector.stats.slowdowns == 1

    def test_cache_corruption_drops_cache(self):
        cluster = fault_cluster(seed=23)
        cluster.submit_job(job_spec(input_mb=80))
        # Input bytes land in the cache as tasks finish (~12.5 s here);
        # the corruption hits right after.
        injector = FaultInjector(
            cluster, FaultPlan().corrupt_cache(at=14.0, host="node00")
        )
        injector.install()
        cluster.start()
        cluster.sim.run(until=13.9)
        cache = cluster.kernel_of("node00").vmm.page_cache
        assert cache.size > cache.min_bytes  # reads filled it
        cluster.sim.run(until=14.5)
        assert cache.size <= cache.min_bytes
        assert injector.stats.corruptions == 1

    def test_task_fail_victim_is_deterministic(self):
        def victim(seed):
            cluster = fault_cluster(seed=seed)
            cluster.submit_job(job_spec())
            injector = FaultInjector(cluster, FaultPlan().fail_task(at=3.0))
            injector.install()
            cluster.run_until_jobs_complete(timeout=3600.0)
            assert injector.stats.task_failures == 1
            return injector.stats.records[0].detail

        assert victim(31) == victim(31)

    def test_crash_without_running_tracker_is_skipped(self):
        cluster = fault_cluster()
        injector = FaultInjector(
            cluster, FaultPlan().crash(at=1.0, host="node01")
        )
        injector.install()
        # Never started: the tracker is not running, so the crash is a
        # no-op rather than an error.
        cluster.sim.run(until=2.0)
        assert injector.stats.crashes == 0
        assert injector.stats.skipped == 1

    def test_crash_and_restart_full_cycle(self):
        cluster = fault_cluster(seed=29)
        job = cluster.submit_job(job_spec())
        injector = FaultInjector(
            cluster,
            FaultPlan().crash(at=3.0, host="node01", restart_after=15.0),
        )
        injector.install()
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        assert injector.stats.crashes == 1
        assert injector.stats.restarts == 1
        assert cluster.jobtracker.trackers_lost == 1
        # The restarted tracker is registered and heartbeating again.
        assert "node01" in cluster.jobtracker.trackers
        assert cluster.trackers["node01"].started


class TestFaultsStudy:
    def test_study_grid_is_deterministic_and_complete(self):
        from repro.experiments.faults_study import run_faults_study

        def one():
            report = run_faults_study(runs=1, base_seed=4242)
            return report.extras["metrics"]

        first, second = one(), one()
        assert first == second
        for scenario in ("node-crash", "straggler", "transient-failure"):
            for primitive in ("kill", "wait", "suspend"):
                cell = first[scenario][primitive]
                assert cell["makespan"][0] > 0
                assert cell["sojourn"][0] > 0
                assert cell["wasted"][0] >= 0

    def test_registry_and_cli_spell_it_faults(self):
        from repro.experiments.registry import get_experiment

        assert get_experiment("faults") is get_experiment("faults_study")
        assert get_experiment("faults") is get_experiment("e8")
