"""Trace log: recording, querying, subscriptions."""

from repro.sim.trace import TraceLog, TraceRecord


class TestTraceLog:
    def test_record_and_find(self):
        log = TraceLog()
        log.record(1.0, "task.start", task="a")
        log.record(2.0, "task.start", task="b")
        log.record(3.0, "task.done", task="a")
        assert len(log) == 3
        assert len(log.find("task.start")) == 2
        assert log.first("task.start", task="b").time == 2.0
        assert log.last("task.start").fields["task"] == "b"

    def test_find_with_field_filter(self):
        log = TraceLog()
        log.record(1.0, "os.signal", sig="SIGTSTP", pid=1)
        log.record(2.0, "os.signal", sig="SIGCONT", pid=1)
        assert len(log.find("os.signal", sig="SIGTSTP")) == 1
        assert log.first("os.signal", sig="SIGKILL") is None

    def test_disabled_log_stores_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "x")
        assert len(log) == 0

    def test_subscribers_fire_even_when_disabled(self):
        log = TraceLog(enabled=False)
        seen = []
        log.subscribe(seen.append)
        log.record(1.0, "x", value=3)
        assert len(seen) == 1
        assert seen[0].fields["value"] == 3

    def test_capacity_keeps_latest(self):
        log = TraceLog(capacity=3)
        for i in range(6):
            log.record(float(i), f"e{i}")
        assert len(log) == 3
        assert [r.label for r in log] == ["e3", "e4", "e5"]

    def test_render_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), f"e{i}")
        out = log.render(limit=2)
        assert "e3" in out and "e4" in out and "e1" not in out


class TestTraceRecord:
    def test_matches_prefix_and_fields(self):
        rec = TraceRecord(1.0, "attempt.launch", {"attempt": "a1"})
        assert rec.matches("attempt.")
        assert rec.matches("attempt.launch", attempt="a1")
        assert not rec.matches("attempt.launch", attempt="a2")
        assert not rec.matches("os.")

    def test_str_contains_fields(self):
        rec = TraceRecord(1.5, "x", {"k": "v"})
        assert "k=v" in str(rec)
        assert "x" in str(rec)


class TestBoundedStorage:
    """Capacity eviction is O(1) per append (deque, not list-trim)."""

    def test_storage_is_a_bounded_deque(self):
        from collections import deque

        log = TraceLog(capacity=100)
        assert isinstance(log._records, deque)
        assert log._records.maxlen == 100

    def test_unbounded_log_has_no_maxlen(self):
        log = TraceLog()
        assert log._records.maxlen is None

    def test_eviction_preserves_query_helpers(self):
        log = TraceLog(capacity=4)
        for i in range(10):
            log.record(float(i), "tick", n=i)
        assert [r.fields["n"] for r in log] == [6, 7, 8, 9]
        assert log.first("tick").fields["n"] == 6
        assert log.last("tick").fields["n"] == 9
        assert len(log.find("tick", n=3)) == 0

    def test_render_limit_larger_than_log(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.record(float(i), f"e{i}")
        out = log.render(limit=50)
        assert "e2" in out and "e4" in out and "e1" not in out

    def test_digest_covers_exactly_the_surviving_window(self):
        kept = TraceLog(capacity=2)
        kept.record(0.5, "early")
        kept.record(1.0, "x")
        evicting = TraceLog(capacity=2)
        evicting.record(-1.0, "evicted")
        evicting.record(0.5, "early")
        evicting.record(1.0, "x")
        # Same surviving records -> same digest...
        assert evicting.digest() == kept.digest()
        # ...and the digest changes with the window contents.
        kept.record(2.0, "y")
        assert evicting.digest() != kept.digest()


class TestCapacityResize:
    """`capacity` is a live property: reading reports the bound,
    assigning rebuilds the window (keeping the newest records)."""

    def test_capacity_reports_the_bound(self):
        assert TraceLog(capacity=5).capacity == 5
        assert TraceLog().capacity is None

    def test_shrink_keeps_newest_records(self):
        log = TraceLog(capacity=10)
        for i in range(10):
            log.record(float(i), "tick", n=i)
        log.capacity = 3
        assert log.capacity == 3
        assert [r.fields["n"] for r in log] == [7, 8, 9]
        log.record(10.0, "tick", n=10)
        assert [r.fields["n"] for r in log] == [8, 9, 10]

    def test_grow_and_unbound(self):
        log = TraceLog(capacity=2)
        for i in range(4):
            log.record(float(i), "tick", n=i)
        log.capacity = None
        for i in range(4, 8):
            log.record(float(i), "tick", n=i)
        assert [r.fields["n"] for r in log] == [2, 3, 4, 5, 6, 7]

    def test_same_capacity_assignment_is_a_noop(self):
        log = TraceLog(capacity=4)
        for i in range(6):
            log.record(float(i), "tick", n=i)
        records_before = log._records
        log.capacity = 4
        assert log._records is records_before
