"""Trace log: recording, querying, subscriptions."""

from repro.sim.trace import TraceLog, TraceRecord


class TestTraceLog:
    def test_record_and_find(self):
        log = TraceLog()
        log.record(1.0, "task.start", task="a")
        log.record(2.0, "task.start", task="b")
        log.record(3.0, "task.done", task="a")
        assert len(log) == 3
        assert len(log.find("task.start")) == 2
        assert log.first("task.start", task="b").time == 2.0
        assert log.last("task.start").fields["task"] == "b"

    def test_find_with_field_filter(self):
        log = TraceLog()
        log.record(1.0, "os.signal", sig="SIGTSTP", pid=1)
        log.record(2.0, "os.signal", sig="SIGCONT", pid=1)
        assert len(log.find("os.signal", sig="SIGTSTP")) == 1
        assert log.first("os.signal", sig="SIGKILL") is None

    def test_disabled_log_stores_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "x")
        assert len(log) == 0

    def test_subscribers_fire_even_when_disabled(self):
        log = TraceLog(enabled=False)
        seen = []
        log.subscribe(seen.append)
        log.record(1.0, "x", value=3)
        assert len(seen) == 1
        assert seen[0].fields["value"] == 3

    def test_capacity_keeps_latest(self):
        log = TraceLog(capacity=3)
        for i in range(6):
            log.record(float(i), f"e{i}")
        assert len(log) == 3
        assert [r.label for r in log] == ["e3", "e4", "e5"]

    def test_render_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), f"e{i}")
        out = log.render(limit=2)
        assert "e3" in out and "e4" in out and "e1" not in out


class TestTraceRecord:
    def test_matches_prefix_and_fields(self):
        rec = TraceRecord(1.0, "attempt.launch", {"attempt": "a1"})
        assert rec.matches("attempt.")
        assert rec.matches("attempt.launch", attempt="a1")
        assert not rec.matches("attempt.launch", attempt="a2")
        assert not rec.matches("os.")

    def test_str_contains_fields(self):
        rec = TraceRecord(1.5, "x", {"k": "v"})
        assert "k=v" in str(rec)
        assert "x" in str(rec)
