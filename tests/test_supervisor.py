"""The supervised sweep runner: watchdog, retries, quarantine,
degradation, mid-cell resume.

Worker-fault cells live at module level so forked/spawned workers can
import them by module path, exactly like real experiment cells.
"""

import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, QuarantineError, SupervisorError
from repro.experiments.chaos import ChaosFault, make_plan
from repro.experiments.runner import Cell, cell_key, run_cells
from repro.experiments.supervisor import (
    RESUMABLE_CELLS,
    SupervisorConfig,
    execute_cell_resumable,
    retry_backoff,
    supervise_cells,
)


# ----------------------------------------------------------------------
# Worker-side probe cells (importable from worker processes)
# ----------------------------------------------------------------------


def probe_cell(seed: int) -> dict:
    return {"seed": seed, "value": seed * 3}


def sigkill_cell(seed: int) -> None:
    """A poison cell: takes its worker down every single attempt."""
    os.kill(os.getpid(), signal.SIGKILL)


def sleepy_cell(seed: int, seconds: float = 30.0) -> int:
    time.sleep(seconds)
    return seed


def flaky_kill_cell(seed: int, flag_dir: str) -> dict:
    """SIGKILLs its worker the first time, succeeds ever after (the
    flag file is the cross-attempt memory)."""
    flag = os.path.join(flag_dir, f"flaky-{seed}")
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as fh:
            fh.write("died once")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"seed": seed, "recovered": True}


def sigstop_once_cell(seed: int, flag_dir: str) -> dict:
    """Freezes its worker (SIGSTOP) on the first attempt -- heartbeats
    stop but the process stays alive; only the watchdog can save the
    sweep."""
    flag = os.path.join(flag_dir, f"stopped-{seed}")
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as fh:
            fh.write("froze once")
        os.kill(os.getpid(), signal.SIGSTOP)
    return {"seed": seed, "thawed": True}


def interrupt_cell(seed: int) -> None:
    raise KeyboardInterrupt


def probes(n):
    return [
        Cell.make("tests.test_supervisor", "probe_cell", seed=i)
        for i in range(n)
    ]


def fast_config(**overrides):
    defaults = dict(
        max_retries=2, backoff_base=0.01, backoff_cap=0.05,
        heartbeat_interval=0.05, heartbeat_timeout=30.0,
        snapshot_every=None,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


# ----------------------------------------------------------------------
# Config + backoff
# ----------------------------------------------------------------------


class TestConfig:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(cell_timeout=0.0)

    def test_hanging_chaos_requires_timeout(self):
        plan = make_plan({("k", 0): ChaosFault("hang")})
        with pytest.raises(ConfigurationError, match="cell_timeout"):
            SupervisorConfig(chaos=plan)
        SupervisorConfig(chaos=plan, cell_timeout=1.0)  # fine with one


class TestRetryBackoff:
    def test_deterministic(self):
        assert retry_backoff("abc", 1) == retry_backoff("abc", 1)
        assert retry_backoff("abc", 1) != retry_backoff("abd", 1)

    def test_exponential_until_cap(self):
        base = [retry_backoff("cell", a, base=0.1, cap=1e9)
                for a in range(4)]
        # Jitter is bounded by [1, 2), so doubling dominates: each
        # step at least equals the previous and the envelope doubles.
        for a in range(3):
            assert base[a + 1] > base[a] / 2 * 2 - 1e-12
        assert base[3] >= 0.1 * 8
        assert retry_backoff("cell", 50, base=0.1, cap=2.5) == 2.5

    def test_never_wall_time_dependent(self):
        before = retry_backoff("k", 0)
        time.sleep(0.01)
        assert retry_backoff("k", 0) == before


# ----------------------------------------------------------------------
# Crash / timeout / retry / quarantine paths
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_worker_sigkill_mid_cell_retries_then_succeeds(self, tmp_path):
        cells = probes(3) + [
            Cell.make("tests.test_supervisor", "flaky_kill_cell",
                      seed=7, flag_dir=str(tmp_path)),
        ]
        sweep = supervise_cells(
            cells, list(range(4)), workers=2, config=fast_config()
        )
        assert sweep.results[3] == {"seed": 7, "recovered": True}
        assert sweep.results[:3] == [probe_cell(i) for i in range(3)]
        assert sweep.quarantined == []
        assert sweep.stats["worker_deaths"] == 1
        assert sweep.stats["retries"] == 1
        assert sweep.stats["worker_restarts"] == 1

    def test_cell_timeout_kills_and_quarantines(self):
        cells = probes(2) + [
            Cell.make("tests.test_supervisor", "sleepy_cell",
                      seed=9, seconds=60.0),
        ]
        sweep = supervise_cells(
            cells, list(range(3)), workers=2,
            config=fast_config(max_retries=1, cell_timeout=0.4),
        )
        assert sweep.results[:2] == [probe_cell(i) for i in range(2)]
        assert sweep.results[2] is None
        assert len(sweep.quarantined) == 1
        record = sweep.quarantined[0]
        assert record.index == 2
        assert record.attempts == 2
        assert all("timeout" in cause for cause in record.causes)
        assert sweep.stats["timeouts"] == 2

    def test_retry_cap_quarantine_does_not_abort_sweep(self):
        """The acceptance criterion: a poison cell quarantines while
        every other cell still completes."""
        cells = probes(4) + [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=1),
        ]
        sweep = supervise_cells(
            cells, list(range(5)), workers=2,
            config=fast_config(max_retries=1),
        )
        assert sweep.results[:4] == [probe_cell(i) for i in range(4)]
        assert [r.index for r in sweep.quarantined] == [4]
        assert sweep.quarantined[0].attempts == 2
        assert sweep.stats["quarantines"] == 1
        assert sweep.stats["cells_completed"] == 4

    def test_run_cells_raises_quarantine_error_after_completion(self, tmp_path):
        cells = probes(3) + [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=5),
        ]
        cache = str(tmp_path / "sweep")
        with pytest.raises(QuarantineError) as excinfo:
            run_cells(cells, workers=2, cache_dir=cache,
                      supervise=fast_config(max_retries=0))
        assert len(excinfo.value.records) == 1
        # ... but the healthy cells all persisted before the raise.
        import json

        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["done"] == 3
        assert manifest["quarantined"] == 1
        poison = [e for e in manifest["cells"] if e.get("quarantined")]
        assert len(poison) == 1 and poison[0]["attempts"] == 1
        assert manifest["supervisor"]["quarantines"] == 1

    def test_run_cells_keep_quarantine_returns_none_slot(self):
        cells = probes(2) + [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=5),
        ]
        results = run_cells(
            cells, workers=2, supervise=fast_config(max_retries=0),
            on_quarantine="keep",
        )
        assert results[:2] == [probe_cell(i) for i in range(2)]
        assert results[2] is None

    def test_heartbeat_loss_detected_and_recovered(self, tmp_path):
        cells = probes(2) + [
            Cell.make("tests.test_supervisor", "sigstop_once_cell",
                      seed=3, flag_dir=str(tmp_path)),
        ]
        sweep = supervise_cells(
            cells, list(range(3)), workers=2,
            config=fast_config(heartbeat_interval=0.05,
                               heartbeat_timeout=0.5),
        )
        assert sweep.results[2] == {"seed": 3, "thawed": True}
        assert sweep.stats["heartbeats_lost"] >= 1
        assert sweep.quarantined == []

    def test_pool_degrades_then_dies_loudly(self):
        # One worker slot, zero death budget, a cell that keeps
        # killing it while other work is still pending: the pool
        # shrinks to nothing and the supervisor must say so.
        cells = [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=1),
        ] + probes(3)
        with pytest.raises(SupervisorError, match="permanently dead"):
            supervise_cells(
                cells, list(range(4)), workers=1,
                config=fast_config(max_retries=3, worker_death_cap=0),
            )

    def test_pool_degradation_survivors_finish_the_sweep(self):
        # Two slots, a poison cell retires whichever slots it burns
        # (death cap 1 -> retire on the second consecutive death);
        # the surviving slot steals the rest of the queue.
        cells = probes(6) + [
            Cell.make("tests.test_supervisor", "sigkill_cell", seed=2),
        ]
        sweep = supervise_cells(
            cells, list(range(7)), workers=2,
            config=fast_config(max_retries=2, worker_death_cap=2),
        )
        assert sweep.results[:6] == [probe_cell(i) for i in range(6)]
        assert [r.index for r in sweep.quarantined] == [6]
        assert sweep.stats["worker_deaths"] == 3

    def test_worker_exception_still_propagates(self):
        bad = [Cell.make("tests.test_runner", "failing_cell", seed=1)]
        with pytest.raises(ValueError, match="exploded"):
            run_cells(bad + probes(2), workers=2,
                      supervise=fast_config())

    def test_keyboard_interrupt_from_worker_propagates(self):
        cells = probes(2) + [
            Cell.make("tests.test_supervisor", "interrupt_cell", seed=0),
        ]
        with pytest.raises(KeyboardInterrupt):
            run_cells(cells, workers=2, supervise=fast_config())


# ----------------------------------------------------------------------
# Mid-cell snapshot / resume
# ----------------------------------------------------------------------


def _scale_cell(num_jobs=5, trackers=5):
    from repro.experiments.runner import derive_seed

    seed = derive_seed(9000, "scale", "baseline", trackers, "suspend", 0)
    return Cell.make(
        "repro.experiments.scale_study", "_run_once",
        scenario="baseline", primitive_name="suspend", trackers=trackers,
        num_jobs=num_jobs, seed=seed, trace=True,
    )


class TestMidcellResume:
    def test_registry_names_the_long_studies(self):
        assert RESUMABLE_CELLS[
            ("repro.experiments.scale_study", "_run_once")
        ] == "scale"
        assert RESUMABLE_CELLS[
            ("repro.experiments.memscale_study", "_run_once")
        ] == "memscale"

    def test_non_resumable_cell_falls_through(self, tmp_path):
        cell = probes(1)[0]
        assert execute_cell_resumable(cell, str(tmp_path), 60.0) == (
            probe_cell(0)
        )

    def test_fresh_run_with_snapshots_is_identical_and_cleans_up(
        self, tmp_path
    ):
        from repro.experiments.runner import execute_cell

        cell = _scale_cell()
        clean = execute_cell(cell)
        snapped = execute_cell_resumable(cell, str(tmp_path), 40.0)
        assert snapped == clean
        midck = tmp_path / (cell_key(cell) + ".midck")
        assert not midck.exists()

    def test_resume_from_midcell_checkpoint_is_byte_identical(
        self, tmp_path
    ):
        from repro.checkpoint.core import save
        from repro.experiments import scale_study
        from repro.experiments.runner import execute_cell

        cell = _scale_cell()
        clean = execute_cell(cell)
        # Craft the crash artifact: a cell frozen ~80 virtual seconds
        # in, exactly what a SIGKILLed shard leaves behind.
        cluster, _counter = scale_study._build_run(
            "baseline", "suspend", 5, 5, cell.kwargs["seed"], trace=True
        )
        cluster.start()
        while cluster.sim.now < 80.0 and cluster.sim.step():
            pass
        midck = tmp_path / (cell_key(cell) + ".midck")
        save(cluster, str(midck), meta={"kind": "scale", **cell.kwargs})

        resumed = execute_cell_resumable(cell, str(tmp_path), 50.0)
        assert resumed == clean
        assert resumed["trace_digest"] == clean["trace_digest"]
        assert not midck.exists()

    def test_corrupt_midcell_checkpoint_falls_back_to_zero(
        self, tmp_path, capsys
    ):
        from repro.experiments.runner import execute_cell

        cell = _scale_cell()
        clean = execute_cell(cell)
        midck = tmp_path / (cell_key(cell) + ".midck")
        midck.write_bytes(b"RPCK\x00\x00\x00\x02{}garbage")
        result = execute_cell_resumable(cell, str(tmp_path), 50.0)
        assert result == clean
        assert "unusable" in capsys.readouterr().err
