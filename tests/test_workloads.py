"""Workload specs and generators."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec
from repro.workloads.swim import (
    DEFAULT_CLASSES,
    FACEBOOK_CLASSES,
    MIXES,
    SHUFFLE_HEAVY_CLASSES,
    ArrivalSpec,
    SwimGenerator,
    SwimJobClass,
)
from repro.workloads.synthetic import (
    PAPER_INPUT_BYTES,
    WORST_CASE_FOOTPRINT,
    heavy_task,
    light_task,
    make_job,
    two_job_microbenchmark,
)


class TestTaskSpec:
    def test_defaults_are_paper_shaped(self):
        spec = TaskSpec()
        assert spec.kind is TaskKind.MAP
        assert spec.input_bytes == 512 * MB
        assert not spec.stateful

    def test_stateful_requires_footprint(self):
        spec = TaskSpec(profile=MemoryProfile.STATEFUL, footprint_bytes=0)
        assert not spec.stateful
        spec = TaskSpec(profile=MemoryProfile.STATEFUL, footprint_bytes=GB)
        assert spec.stateful

    def test_with_footprint(self):
        spec = TaskSpec().with_footprint(GB)
        assert spec.stateful
        assert spec.footprint_bytes == GB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskSpec(input_bytes=-1)
        with pytest.raises(ConfigurationError):
            TaskSpec(parse_rate=0)
        with pytest.raises(ConfigurationError):
            TaskSpec(shuffle_bytes=5)  # map tasks do not shuffle
        with pytest.raises(ConfigurationError):
            TaskSpec(resume_read_bytes=-1)

    def test_reduce_may_shuffle(self):
        spec = TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=5 * MB)
        assert spec.shuffle_bytes == 5 * MB


class TestJobSpec:
    def test_auto_name(self):
        spec = JobSpec(name="")
        assert spec.name.startswith("job-")

    def test_kind_views(self):
        spec = JobSpec(
            name="j",
            tasks=[TaskSpec(), TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=MB)],
        )
        assert len(spec.map_tasks) == 1
        assert len(spec.reduce_tasks) == 1

    def test_total_input_and_estimate(self):
        spec = JobSpec(
            name="j",
            tasks=[TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB)] * 2,
        )
        assert spec.total_input_bytes == 140 * MB
        assert spec.estimated_serial_seconds() == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobSpec(name="j", submit_offset=-1.0)
        with pytest.raises(ConfigurationError):
            JobSpec(name="j", deadline_seconds=0)


class TestSynthetic:
    def test_light_task(self):
        spec = light_task()
        assert spec.input_bytes == PAPER_INPUT_BYTES
        assert not spec.stateful

    def test_heavy_task(self):
        spec = heavy_task()
        assert spec.footprint_bytes == WORST_CASE_FOOTPRINT
        assert spec.stateful

    def test_make_job(self):
        job = make_job("x", light_task(), priority=3)
        assert job.priority == 3
        assert len(job.tasks) == 1

    def test_microbenchmark_light(self):
        tl, th = two_job_microbenchmark()
        assert tl.priority < th.priority
        assert not tl.tasks[0].stateful

    def test_microbenchmark_heavy(self):
        tl, th = two_job_microbenchmark(heavy=True, tl_footprint=GB, th_footprint=2 * GB)
        assert tl.tasks[0].footprint_bytes == GB
        assert th.tasks[0].footprint_bytes == 2 * GB


class TestSwim:
    def stream(self, seed=11):
        return RngRegistry(seed).stream("swim")

    def test_deterministic_per_seed(self):
        a = SwimGenerator(self.stream()).generate_workload(10)
        b = SwimGenerator(self.stream()).generate_workload(10)
        assert [j.name for j in a] == [j.name for j in b]
        assert [j.submit_offset for j in a] == [j.submit_offset for j in b]

    def test_arrivals_monotonic(self):
        jobs = SwimGenerator(self.stream()).generate_workload(20)
        offsets = [j.submit_offset for j in jobs]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_sizes_within_class_bounds(self):
        jobs = SwimGenerator(self.stream()).generate_workload(30)
        lo = min(c.input_bytes[0] for c in DEFAULT_CLASSES)
        hi = max(c.input_bytes[1] for c in DEFAULT_CLASSES)
        for job in jobs:
            for task in job.tasks:
                assert lo <= task.input_bytes <= hi

    def test_mix_respects_weights_roughly(self):
        jobs = SwimGenerator(self.stream(), mean_interarrival=1.0).generate_workload(300)
        small = sum(1 for j in jobs if "small" in j.name)
        large = sum(1 for j in jobs if "large" in j.name)
        assert small > large  # 60% vs 10% weights

    def test_custom_classes(self):
        cls = SwimJobClass("only", weight=1.0, num_tasks=range(3, 4))
        jobs = SwimGenerator(self.stream(), classes=[cls]).generate_workload(5)
        assert all(len(j.tasks) == 3 for j in jobs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwimJobClass("bad", weight=0)
        with pytest.raises(ConfigurationError):
            SwimGenerator(self.stream(), classes=[])
        with pytest.raises(ConfigurationError):
            SwimGenerator(self.stream()).generate_workload(-1)

    # -- edge cases ----------------------------------------------------------

    def test_zero_jobs(self):
        assert SwimGenerator(self.stream()).generate_workload(0) == []

    def test_single_class_always_drawn(self):
        cls = SwimJobClass("solo", weight=0.001, num_tasks=range(2, 3))
        jobs = SwimGenerator(self.stream(), classes=[cls]).generate_workload(20)
        assert all("solo" in j.name for j in jobs)
        assert all(len(j.tasks) == 2 for j in jobs)

    def test_degenerate_weight_mix(self):
        # A vanishing weight next to a dominating one must neither
        # crash nor ever be over-drawn; the dominant class wins nearly
        # always but the draw stays well-defined.
        classes = [
            SwimJobClass("dust", weight=1e-12, num_tasks=range(1, 2)),
            SwimJobClass("giant", weight=1e6, num_tasks=range(1, 2)),
        ]
        jobs = SwimGenerator(self.stream(), classes=classes).generate_workload(50)
        assert sum(1 for j in jobs if "giant" in j.name) >= 49

    def test_equal_weights_all_drawn(self):
        classes = [
            SwimJobClass(f"c{i}", weight=1.0, num_tasks=range(1, 2))
            for i in range(4)
        ]
        jobs = SwimGenerator(
            self.stream(), classes=classes, mean_interarrival=1.0
        ).generate_workload(200)
        names = {j.name.split("-")[-1] for j in jobs}
        assert names == {"c0", "c1", "c2", "c3"}

    def test_shuffle_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            SwimJobClass("bad", weight=1.0, shuffle_fraction=(0.8, 0.2))
        with pytest.raises(ConfigurationError):
            SwimJobClass("bad", weight=1.0, shuffle_fraction=(0.5, 1.5))
        with pytest.raises(ConfigurationError):
            SwimJobClass("bad", weight=1.0, num_reduces=range(-1, 2))


class TestSwimReduces:
    def stream(self, seed=17):
        return RngRegistry(seed).stream("swim")

    def test_default_mix_is_map_only(self):
        jobs = SwimGenerator(self.stream()).generate_workload(30)
        assert all(not j.reduce_tasks for j in jobs)

    def test_shuffle_heavy_mix_always_reduces(self):
        jobs = SwimGenerator(
            self.stream(), classes=SHUFFLE_HEAVY_CLASSES
        ).generate_workload(15)
        for job in jobs:
            assert job.reduce_tasks
            for reduce_spec in job.reduce_tasks:
                assert reduce_spec.shuffle_bytes > 0
                assert reduce_spec.input_bytes == reduce_spec.shuffle_bytes

    def test_shuffle_volume_bounded_by_map_input(self):
        jobs = SwimGenerator(
            self.stream(), classes=FACEBOOK_CLASSES
        ).generate_workload(40)
        for job in jobs:
            map_input = sum(t.input_bytes for t in job.map_tasks)
            shuffled = sum(t.shuffle_bytes for t in job.reduce_tasks)
            assert shuffled <= map_input

    def test_named_mixes_registry(self):
        assert set(MIXES) == {
            "default", "facebook", "shuffle-heavy", "memory-heavy", "steady"
        }
        assert MIXES["default"] is DEFAULT_CLASSES


class TestArrivals:
    def stream(self, seed=23):
        return RngRegistry(seed).stream("swim")

    def gen(self, arrival):
        return SwimGenerator(self.stream(), arrival=arrival)

    def test_arrival_kind_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="lunar")
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="diurnal", amplitude=1.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="diurnal", period=0.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="bursty", burst_size=range(0, 3))

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_offsets_monotonic_and_deterministic(self, kind):
        spec = ArrivalSpec(kind=kind, mean_interarrival=5.0)
        first = self.gen(spec).generate_workload(40)
        second = self.gen(spec).generate_workload(40)
        offsets = [j.submit_offset for j in first]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0
        assert offsets == [j.submit_offset for j in second]

    def test_bursty_clusters_arrivals(self):
        spec = ArrivalSpec(
            kind="bursty",
            mean_interarrival=100.0,
            burst_size=range(5, 6),
            burst_spread=0.5,
        )
        offsets = [
            j.submit_offset for j in self.gen(spec).generate_workload(50)
        ]
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        # Most gaps are tiny intra-burst spacings; the rare long ones
        # separate bursts.
        assert sum(1 for g in gaps if g < 5.0) >= len(gaps) // 2
        assert max(gaps) > 20.0

    def test_bursty_long_run_rate_matches_mean(self):
        # The inter-burst gap budget subtracts the expected intra-burst
        # spacing, so the realized rate tracks mean_interarrival.
        spec = ArrivalSpec(
            kind="bursty",
            mean_interarrival=10.0,
            burst_size=range(3, 9),
            burst_spread=2.0,
        )
        jobs = self.gen(spec).generate_workload(2000)
        realized = jobs[-1].submit_offset / (len(jobs) - 1)
        assert realized == pytest.approx(10.0, rel=0.15)

    def test_poisson_matches_legacy_constructor(self):
        # mean_interarrival without an ArrivalSpec must keep drawing
        # the exact historical sequence.
        legacy = SwimGenerator(self.stream(), mean_interarrival=7.0)
        explicit = SwimGenerator(
            self.stream(),
            arrival=ArrivalSpec(kind="poisson", mean_interarrival=7.0),
        )
        a = [j.submit_offset for j in legacy.generate_workload(25)]
        b = [j.submit_offset for j in explicit.generate_workload(25)]
        assert a == b
