"""Workload specs and generators."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec
from repro.workloads.swim import DEFAULT_CLASSES, SwimGenerator, SwimJobClass
from repro.workloads.synthetic import (
    PAPER_INPUT_BYTES,
    WORST_CASE_FOOTPRINT,
    heavy_task,
    light_task,
    make_job,
    two_job_microbenchmark,
)


class TestTaskSpec:
    def test_defaults_are_paper_shaped(self):
        spec = TaskSpec()
        assert spec.kind is TaskKind.MAP
        assert spec.input_bytes == 512 * MB
        assert not spec.stateful

    def test_stateful_requires_footprint(self):
        spec = TaskSpec(profile=MemoryProfile.STATEFUL, footprint_bytes=0)
        assert not spec.stateful
        spec = TaskSpec(profile=MemoryProfile.STATEFUL, footprint_bytes=GB)
        assert spec.stateful

    def test_with_footprint(self):
        spec = TaskSpec().with_footprint(GB)
        assert spec.stateful
        assert spec.footprint_bytes == GB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskSpec(input_bytes=-1)
        with pytest.raises(ConfigurationError):
            TaskSpec(parse_rate=0)
        with pytest.raises(ConfigurationError):
            TaskSpec(shuffle_bytes=5)  # map tasks do not shuffle
        with pytest.raises(ConfigurationError):
            TaskSpec(resume_read_bytes=-1)

    def test_reduce_may_shuffle(self):
        spec = TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=5 * MB)
        assert spec.shuffle_bytes == 5 * MB


class TestJobSpec:
    def test_auto_name(self):
        spec = JobSpec(name="")
        assert spec.name.startswith("job-")

    def test_kind_views(self):
        spec = JobSpec(
            name="j",
            tasks=[TaskSpec(), TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=MB)],
        )
        assert len(spec.map_tasks) == 1
        assert len(spec.reduce_tasks) == 1

    def test_total_input_and_estimate(self):
        spec = JobSpec(
            name="j",
            tasks=[TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB)] * 2,
        )
        assert spec.total_input_bytes == 140 * MB
        assert spec.estimated_serial_seconds() == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobSpec(name="j", submit_offset=-1.0)
        with pytest.raises(ConfigurationError):
            JobSpec(name="j", deadline_seconds=0)


class TestSynthetic:
    def test_light_task(self):
        spec = light_task()
        assert spec.input_bytes == PAPER_INPUT_BYTES
        assert not spec.stateful

    def test_heavy_task(self):
        spec = heavy_task()
        assert spec.footprint_bytes == WORST_CASE_FOOTPRINT
        assert spec.stateful

    def test_make_job(self):
        job = make_job("x", light_task(), priority=3)
        assert job.priority == 3
        assert len(job.tasks) == 1

    def test_microbenchmark_light(self):
        tl, th = two_job_microbenchmark()
        assert tl.priority < th.priority
        assert not tl.tasks[0].stateful

    def test_microbenchmark_heavy(self):
        tl, th = two_job_microbenchmark(heavy=True, tl_footprint=GB, th_footprint=2 * GB)
        assert tl.tasks[0].footprint_bytes == GB
        assert th.tasks[0].footprint_bytes == 2 * GB


class TestSwim:
    def stream(self, seed=11):
        return RngRegistry(seed).stream("swim")

    def test_deterministic_per_seed(self):
        a = SwimGenerator(self.stream()).generate_workload(10)
        b = SwimGenerator(self.stream()).generate_workload(10)
        assert [j.name for j in a] == [j.name for j in b]
        assert [j.submit_offset for j in a] == [j.submit_offset for j in b]

    def test_arrivals_monotonic(self):
        jobs = SwimGenerator(self.stream()).generate_workload(20)
        offsets = [j.submit_offset for j in jobs]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_sizes_within_class_bounds(self):
        jobs = SwimGenerator(self.stream()).generate_workload(30)
        lo = min(c.input_bytes[0] for c in DEFAULT_CLASSES)
        hi = max(c.input_bytes[1] for c in DEFAULT_CLASSES)
        for job in jobs:
            for task in job.tasks:
                assert lo <= task.input_bytes <= hi

    def test_mix_respects_weights_roughly(self):
        jobs = SwimGenerator(self.stream(), mean_interarrival=1.0).generate_workload(300)
        small = sum(1 for j in jobs if "small" in j.name)
        large = sum(1 for j in jobs if "large" in j.name)
        assert small > large  # 60% vs 10% weights

    def test_custom_classes(self):
        cls = SwimJobClass("only", weight=1.0, num_tasks=range(3, 4))
        jobs = SwimGenerator(self.stream(), classes=[cls]).generate_workload(5)
        assert all(len(j.tasks) == 3 for j in jobs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwimJobClass("bad", weight=0)
        with pytest.raises(ConfigurationError):
            SwimGenerator(self.stream(), classes=[])
        with pytest.raises(ConfigurationError):
            SwimGenerator(self.stream()).generate_workload(-1)
