"""The paper's task state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TaskStateError
from repro.hadoop.states import (
    TIP_TRANSITIONS,
    AttemptState,
    TipState,
    check_tip_transition,
)


class TestTipStates:
    def test_paper_suspend_path(self):
        # RUNNING -> MUST_SUSPEND -> SUSPENDED -> MUST_RESUME -> RUNNING
        path = [
            TipState.UNASSIGNED,
            TipState.RUNNING,
            TipState.MUST_SUSPEND,
            TipState.SUSPENDED,
            TipState.MUST_RESUME,
            TipState.RUNNING,
        ]
        for old, new in zip(path, path[1:]):
            check_tip_transition(old, new)  # must not raise

    def test_completed_in_the_meanwhile(self):
        # "whether it completed in the meanwhile"
        check_tip_transition(TipState.MUST_SUSPEND, TipState.SUCCEEDED)

    def test_self_transition_allowed(self):
        check_tip_transition(TipState.RUNNING, TipState.RUNNING)

    def test_illegal_edges_raise(self):
        with pytest.raises(TaskStateError):
            check_tip_transition(TipState.UNASSIGNED, TipState.SUSPENDED)
        with pytest.raises(TaskStateError):
            check_tip_transition(TipState.SUCCEEDED, TipState.RUNNING)
        with pytest.raises(TaskStateError):
            check_tip_transition(TipState.SUSPENDED, TipState.RUNNING)

    def test_terminal_classification(self):
        assert TipState.SUCCEEDED.terminal
        assert TipState.KILLED.terminal
        assert TipState.FAILED.terminal
        assert not TipState.SUSPENDED.terminal

    def test_active_classification(self):
        for state in (
            TipState.RUNNING,
            TipState.MUST_SUSPEND,
            TipState.SUSPENDED,
            TipState.MUST_RESUME,
            TipState.MUST_KILL,
        ):
            assert state.active
        assert not TipState.UNASSIGNED.active
        assert not TipState.SUCCEEDED.active

    def test_succeeded_reopens_only_for_lost_output(self):
        # A completed map may be re-executed when the tracker holding
        # its output is lost; nothing else leaves SUCCEEDED.
        assert TIP_TRANSITIONS[TipState.SUCCEEDED] == frozenset(
            {TipState.UNASSIGNED}
        )

    def test_killed_can_be_rescheduled(self):
        check_tip_transition(TipState.KILLED, TipState.UNASSIGNED)

    @settings(max_examples=100)
    @given(st.lists(st.sampled_from(list(TipState)), min_size=1, max_size=12))
    def test_random_walks_respect_transition_table(self, targets):
        state = TipState.UNASSIGNED
        for target in targets:
            try:
                check_tip_transition(state, target)
            except TaskStateError:
                assert target is not state
                assert target not in TIP_TRANSITIONS[state]
                continue
            assert target is state or target in TIP_TRANSITIONS[state]
            state = target


class TestAttemptStates:
    def test_slot_holding(self):
        assert AttemptState.RUNNING.holds_slot
        assert AttemptState.STARTING.holds_slot
        assert AttemptState.SUSPENDING.holds_slot
        # The crux of the primitive: suspended attempts release the slot.
        assert not AttemptState.SUSPENDED.holds_slot
        assert not AttemptState.SUCCEEDED.holds_slot

    def test_terminality(self):
        assert AttemptState.SUCCEEDED.terminal
        assert AttemptState.KILLED.terminal
        assert AttemptState.FAILED.terminal
        assert not AttemptState.SUSPENDED.terminal
