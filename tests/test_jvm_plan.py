"""Child JVM plan construction."""

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.config import HadoopConfig
from repro.hadoop.jvm import ChildJVM, GcPolicy
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.sim.engine import Simulation
from repro.units import GB, MB
from repro.workloads.jobspec import MemoryProfile, TaskKind, TaskSpec


def make_kernel():
    return NodeKernel(
        Simulation(seed=9),
        NodeConfig(ram_bytes=4 * GB, os_reserved_bytes=0, hostname="jvmtest"),
    )


def config(**overrides):
    defaults = dict(task_time_jitter=0.0, jvm_base_memory=64 * MB)
    defaults.update(overrides)
    return HadoopConfig(**defaults)


def labels(jvm):
    return [item.label for item in jvm.engine.plan]


class TestMapPlans:
    def test_light_map_plan(self):
        jvm = ChildJVM(make_kernel(), config(), TaskSpec(), "t")
        assert labels(jvm) == ["jvm-start", "setup", "map", "finalize", "commit"]

    def test_stateful_map_plan_uses_memtouch(self):
        spec = TaskSpec(footprint_bytes=1 * GB, profile=MemoryProfile.STATEFUL)
        jvm = ChildJVM(make_kernel(), config(), spec, "t")
        assert labels(jvm) == ["jvm-start", "setup", "map", "finalize", "commit"]
        finalize = jvm.engine.plan.items[3]
        from repro.osmodel.work import MemTouchItem

        assert isinstance(finalize, MemTouchItem)

    def test_no_output_skips_commit(self):
        jvm = ChildJVM(make_kernel(), config(), TaskSpec(output_bytes=0), "t")
        assert labels(jvm)[-1] == "finalize"

    def test_checkpoint_restore_item(self):
        spec = TaskSpec(resume_read_bytes=100 * MB)
        jvm = ChildJVM(make_kernel(), config(), spec, "t")
        assert "checkpoint-restore" in labels(jvm)

    def test_gc_release_plan(self):
        spec = TaskSpec(footprint_bytes=1 * GB, profile=MemoryProfile.STATEFUL)
        jvm = ChildJVM(make_kernel(), config(), spec, "t", gc_policy=GcPolicy.RELEASE)
        assert "gc-release" in labels(jvm)

    def test_gc_release_returns_memory(self):
        kernel = make_kernel()
        spec = TaskSpec(
            footprint_bytes=512 * MB,
            profile=MemoryProfile.STATEFUL,
            output_bytes=0,
            input_bytes=MB,
        )
        jvm = ChildJVM(kernel, config(), spec, "t", gc_policy=GcPolicy.RELEASE)
        seen = []
        # Sample resident just before exit via the commit-less last item.
        jvm.process.on_exit(lambda p, r: seen.append(p.image.virtual))
        jvm.start()
        kernel.sim.run()
        # gc-release freed the footprint before exit: only the JVM base
        # memory remained mapped at death.
        assert seen and seen[0] <= 64 * MB

    def test_heap_limit_enforced(self):
        spec = TaskSpec(footprint_bytes=4 * GB, profile=MemoryProfile.STATEFUL)
        with pytest.raises(ConfigurationError):
            ChildJVM(make_kernel(), config(child_heap_limit=2 * GB), spec, "t")

    def test_aux_extra_work(self):
        jvm = ChildJVM(
            make_kernel(),
            config(),
            TaskSpec(input_bytes=0, output_bytes=0),
            "t",
            extra_work_seconds=1.5,
        )
        assert "aux-work" in labels(jvm)


class TestReducePlans:
    def test_reduce_phases(self):
        spec = TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=100 * MB)
        jvm = ChildJVM(make_kernel(), config(), spec, "t")
        assert labels(jvm) == [
            "jvm-start",
            "setup",
            "shuffle",
            "sort",
            "reduce",
            "finalize",
            "commit",
        ]

    def test_reduce_progress_thirds(self):
        spec = TaskSpec(kind=TaskKind.REDUCE, shuffle_bytes=100 * MB)
        jvm = ChildJVM(make_kernel(), config(), spec, "t")
        weights = {i.label: i.weight for i in jvm.engine.plan}
        assert weights["shuffle"] == pytest.approx(1 / 3)
        assert weights["sort"] == pytest.approx(1 / 3)
        assert weights["reduce"] == pytest.approx(1 / 3)


class TestExecution:
    def test_full_map_run_duration(self):
        kernel = make_kernel()
        cfg = config(jvm_startup_time=1.0, task_finalize_time=0.2)
        spec = TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB, output_bytes=0)
        jvm = ChildJVM(kernel, cfg, spec, "t")
        done = []
        jvm.process.on_exit(lambda p, r: done.append(kernel.sim.now))
        jvm.start()
        kernel.sim.run()
        alloc_time = 64 * MB / kernel.config.mem_touch_bw
        assert done[0] == pytest.approx(1.0 + alloc_time + 10.0 + 0.2, rel=1e-3)

    def test_progress_tracks_map_fraction(self):
        kernel = make_kernel()
        spec = TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB)
        jvm = ChildJVM(kernel, config(jvm_startup_time=0.0), spec, "t")
        jvm.start()
        kernel.sim.run(until=5.05)  # ~half the map (alloc ~0.05s)
        assert 0.45 <= jvm.progress() <= 0.55

    def test_jitter_changes_runtimes_across_seeds(self):
        durations = []
        for seed in (1, 2):
            kernel = NodeKernel(
                Simulation(seed=seed), NodeConfig(hostname="j", os_reserved_bytes=0)
            )
            spec = TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB, output_bytes=0)
            jvm = ChildJVM(kernel, config(task_time_jitter=0.05), spec, "t")
            done = []
            jvm.process.on_exit(lambda p, r: done.append(kernel.sim.now))
            jvm.start()
            kernel.sim.run()
            durations.append(done[0])
        assert durations[0] != durations[1]
