"""Metrics: stats, series, reports, timelines."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.report import ascii_plot, ascii_table, series_table, series_to_csv
from repro.metrics.series import Series
from repro.metrics.stats import percentile, relative_change, summarize
from repro.metrics.timeline import TimelineSegment, extract_timeline, render_gantt
from repro.sim.trace import TraceLog


class TestStats:
    def test_summarize_basics(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3
        assert stats.stdev == pytest.approx(1.0)

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.stdev == 0.0
        assert stats.ci95_halfwidth() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_max_relative_deviation(self):
        stats = summarize([95.0, 100.0, 105.0])
        assert stats.max_relative_deviation == pytest.approx(0.05)

    def test_relative_change(self):
        assert relative_change(110.0, 100.0) == pytest.approx(0.1)
        assert relative_change(0.0, 0.0) == 0.0
        assert math.isinf(relative_change(5.0, 0.0))

    def test_percentile(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 50) == 3
        assert percentile(data, 100) == 5
        assert percentile(data, 25) == 2.0

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 150)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_summarize_bounds(self, values):
        stats = summarize(values)
        eps = 1e-6 * max(1.0, abs(stats.mean))
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps


class TestSeries:
    def make(self):
        series = Series("s", "x", "y", x_values=[1.0, 2.0, 3.0])
        series.add_curve("a", [10.0, 20.0, 30.0])
        series.add_curve("b", [30.0, 20.0, 10.0])
        return series

    def test_point_lookup(self):
        series = self.make()
        assert series.point("a", 2.0) == 20.0
        with pytest.raises(ConfigurationError):
            series.point("a", 9.0)
        with pytest.raises(ConfigurationError):
            series.point("zzz", 1.0)

    def test_length_mismatch_rejected(self):
        series = Series("s", "x", "y", x_values=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            series.add_curve("bad", [1.0])

    def test_rows(self):
        rows = self.make().rows()
        assert rows[0] == [1.0, 10.0, 30.0]
        assert len(rows) == 3

    def test_crossover(self):
        series = self.make()
        # a crosses above b between x=2 (tie) and x=3.
        assert series.crossover("a", "b") in (2.0, 3.0)
        assert series.crossover("b", "a") is None


class TestReportRendering:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", 1.234], ["bb", 10.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.2" in table and "10.0" in table

    def test_ascii_table_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            ascii_table(["a"], [["x", "y"]])

    def test_series_table_headers(self):
        series = Series("s", "progress", "seconds", x_values=[1.0])
        series.add_curve("wait", [10.0])
        text = series_table(series)
        assert "progress" in text and "wait" in text

    def test_csv_round_shape(self):
        series = Series("s", "x", "y", x_values=[1.0, 2.0])
        series.add_curve("a", [3.0, 4.0])
        csv = series_to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0] == "x,a"
        assert lines[1] == "1,3"

    def test_ascii_plot_contains_glyphs_and_legend(self):
        series = Series("s", "x", "y", x_values=[0.0, 1.0, 2.0])
        series.add_curve("up", [0.0, 5.0, 10.0])
        series.add_curve("down", [10.0, 5.0, 0.0])
        plot = ascii_plot(series, width=40, height=10)
        assert "o" in plot and "x" in plot
        assert "legend" in plot

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot(Series("s", "x", "y"))


class TestTimeline:
    def make_trace(self):
        log = TraceLog()
        log.record(0.0, "attempt.launch", attempt="tl")
        log.record(5.0, "os.stopped", name="tl")
        log.record(5.0, "attempt.launch", attempt="th")
        log.record(15.0, "attempt.finished", attempt="th")
        log.record(15.5, "os.resumed", name="tl")
        log.record(20.0, "attempt.finished", attempt="tl")
        return log

    def test_extract_segments(self):
        segments = extract_timeline(self.make_trace())
        by_task = {}
        for seg in segments:
            by_task.setdefault(seg.task, []).append(seg)
        kinds_tl = [s.kind for s in by_task["tl"]]
        assert kinds_tl == ["run", "suspended", "run"]
        assert by_task["tl"][1].duration == pytest.approx(10.5)
        assert [s.kind for s in by_task["th"]] == ["run"]

    def test_render_gantt(self):
        segments = extract_timeline(self.make_trace())
        chart = render_gantt(segments, width=40)
        assert "tl" in chart and "th" in chart
        assert "=" in chart and "." in chart
        assert "legend" in chart

    def test_render_empty(self):
        assert "empty" in render_gantt([])

    def test_segment_duration(self):
        seg = TimelineSegment("t", "run", 1.0, 3.5)
        assert seg.duration == 2.5


class TestZeroGuardEdges:
    """Signed-infinity guards on zero baselines and zero means."""

    def test_relative_change_keeps_the_sign_of_the_change(self):
        assert relative_change(5.0, 0.0) == math.inf
        assert relative_change(-5.0, 0.0) == -math.inf
        assert relative_change(0.0, 0.0) == 0.0

    def test_zero_mean_with_spread_is_infinite_deviation(self):
        # [-1, 1] must *fail* a 5% repeatability check, not ace it.
        assert math.isinf(summarize([-1.0, 1.0]).max_relative_deviation)

    def test_all_zero_sample_is_perfectly_repeatable(self):
        assert summarize([0.0, 0.0, 0.0]).max_relative_deviation == 0.0
