"""Degenerate heartbeat inputs: stale, unknown and duplicate reports.

Real JobTrackers see reordered and superseded status all the time;
these tests feed synthetic reports straight into
:meth:`repro.hadoop.jobtracker.JobTracker.heartbeat` and check nothing
corrupts.
"""

import pytest

from repro.hadoop.heartbeat import AttemptStatus, HeartbeatReport
from repro.hadoop.states import AttemptState, TipState
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name="job", input_mb=70):
    return JobSpec(
        name=name,
        tasks=[TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                        output_bytes=0)],
    )


def synthetic_report(tracker, attempts, free_map=0, sequence=999):
    return HeartbeatReport(
        tracker=tracker,
        sequence=sequence,
        free_map_slots=free_map,
        free_reduce_slots=0,
        attempts=attempts,
    )


class TestStaleReports:
    def test_unknown_tip_ignored(self):
        cluster = quick_cluster()
        cluster.start()
        report = synthetic_report(
            "node00",
            [
                AttemptStatus(
                    attempt_id="attempt_zzz_0",
                    tip_id="task_zzz",
                    job_id="9999",
                    state=AttemptState.RUNNING,
                    progress=0.5,
                )
            ],
        )
        response = cluster.jobtracker.heartbeat(report)  # no raise
        assert response.sequence == 999

    def test_superseded_attempt_ignored(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=6.0)
        tip = job.tips[0]
        # A report about attempt _7 (never created) must not disturb
        # the live attempt's bookkeeping.
        report = synthetic_report(
            "node00",
            [
                AttemptStatus(
                    attempt_id=f"attempt_{tip.tip_id}_7",
                    tip_id=tip.tip_id,
                    job_id=job.job_id,
                    state=AttemptState.KILLED,
                    progress=0.9,
                )
            ],
        )
        cluster.jobtracker.heartbeat(report)
        assert tip.state is TipState.RUNNING
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED

    def test_duplicate_success_reports_harmless(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec(input_mb=7))
        cluster.run_until_jobs_complete()
        tip = job.tips[0]
        report = synthetic_report(
            "node00",
            [
                AttemptStatus(
                    attempt_id=tip.attempt_ids[-1],
                    tip_id=tip.tip_id,
                    job_id=job.job_id,
                    state=AttemptState.SUCCEEDED,
                    progress=1.0,
                )
            ],
        )
        cluster.jobtracker.heartbeat(report)  # active_attempt_id is None
        assert tip.state is TipState.SUCCEEDED

    def test_zero_free_slots_no_launches(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec())
        response = cluster.jobtracker.heartbeat(
            synthetic_report("node00", [], free_map=0)
        )
        assert response.actions == []

    def test_free_slots_trigger_setup_launch(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec())
        response = cluster.jobtracker.heartbeat(
            synthetic_report("node00", [], free_map=1)
        )
        assert len(response.actions) == 1
        assert "setup" in response.actions[0].describe()


class TestSuspendedStatusBookkeeping:
    def test_suspended_report_updates_progress(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        tip = job.tips[0]
        cluster.when_job_progress(
            "job", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.sim.run(until=10.0)
        assert tip.state is TipState.SUSPENDED
        # The directive rides the next heartbeat, so the task runs a
        # little past the trigger point before the stop lands.
        assert 0.3 <= tip.progress <= 0.55

    def test_report_carries_memory_fields(self):
        cluster = quick_cluster()
        cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=6.0)
        report = cluster.trackers["node00"].build_report()
        work = [s for s in report.attempts if "_m_" in s.attempt_id]
        assert work
        assert work[0].resident_bytes > 0
        assert work[0].swapped_bytes == 0
