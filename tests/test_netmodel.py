"""The network fabric: links, flows, coupled rates, transfers, fetch items."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hdfs.topology import Locality, RackTopology
from repro.netmodel import (
    Fabric,
    FlowState,
    NetConfig,
    NetworkFetchItem,
    TransferState,
)
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.resources import RateResource
from repro.osmodel.signals import Signal
from repro.osmodel.work import WorkEngine, WorkPlan
from repro.sim.engine import Simulation
from repro.units import MB


def two_rack_topology(hosts_per_rack=2):
    topo = RackTopology()
    for rack in range(2):
        for i in range(hosts_per_rack):
            topo.add_host(f"r{rack}h{i}", f"/rack{rack}")
    return topo


def make_fabric(config=None, hosts_per_rack=2, seed=1):
    sim = Simulation(seed=seed)
    topo = two_rack_topology(hosts_per_rack)
    return sim, Fabric(sim, topo, config or NetConfig())


class TestNetConfig:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetConfig(nic_bandwidth=0)

    def test_oversubscribed_uplink_math(self):
        cfg = NetConfig.oversubscribed(
            hosts_per_rack=5, oversubscription=2.5, nic_bandwidth=100.0
        )
        assert cfg.uplink_bandwidth == pytest.approx(200.0)
        assert cfg.core_bandwidth == pytest.approx(400.0)

    def test_oversubscribed_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            NetConfig.oversubscribed(hosts_per_rack=5, oversubscription=0)


class TestLineRateReduction:
    """Acceptance: an uncongested single flow IS the plain PS resource."""

    def test_single_flow_matches_plain_resource(self):
        nbytes = 384 * MB
        cfg = NetConfig(nic_bandwidth=float(100 * MB))
        sim, fabric = make_fabric(cfg)
        done = {}
        fabric.start_flow(
            "r0h0", "r1h0", nbytes, lambda f: done.setdefault("net", sim.now)
        )
        # The oracle: the same bytes as one claim on a plain PS
        # resource at NIC capacity.
        oracle_sim = Simulation(seed=1)
        oracle = RateResource(oracle_sim, capacity=float(100 * MB))
        oracle.submit(nbytes, lambda: done.setdefault("ps", oracle_sim.now))
        sim.run(until=1000)
        oracle_sim.run(until=1000)
        assert done["net"] == pytest.approx(done["ps"], abs=1e-9)
        assert done["net"] == pytest.approx(nbytes / float(100 * MB))

    def test_loopback_never_touches_links(self):
        sim, fabric = make_fabric()
        done = {}
        fabric.start_flow("r0h0", "r0h0", 100 * MB, lambda f: done.setdefault("t", sim.now))
        assert fabric.nic("r0h0").flow_count == 0
        sim.run(until=1000)
        assert done["t"] == pytest.approx(
            100 * MB / fabric.config.loopback_bandwidth
        )


class TestBottleneckSharing:
    def test_uplink_bottleneck_shared_fairly(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=100.0, core_bandwidth=1000.0
        )
        sim, fabric = make_fabric(cfg)
        done = {}
        # Two cross-rack flows share the rack0 uplink and the r1h0 NIC:
        # 50 each; both transfer 100 bytes -> both complete at t=2.
        fabric.start_flow("r0h0", "r1h0", 100, lambda f: done.setdefault("a", sim.now))
        fabric.start_flow("r0h1", "r1h0", 100, lambda f: done.setdefault("b", sim.now))
        sim.run(until=100)
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_unused_share_not_redistributed(self):
        # Flow A is bottlenecked at its source NIC (10); on the shared
        # uplink (100, two flows -> fair share 50) it uses only 10, but
        # B still gets its 50 -- bottleneck share, no progressive fill.
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=100.0, core_bandwidth=1000.0
        )
        sim, fabric = make_fabric(cfg)
        slow_nic = fabric.nic("r0h0")
        slow_nic.capacity = 10.0
        done = {}
        a = fabric.start_flow("r0h0", "r1h0", 100, lambda f: done.setdefault("a", sim.now))
        b = fabric.start_flow("r0h1", "r1h1", 100, lambda f: done.setdefault("b", sim.now))
        assert a.rate == pytest.approx(10.0)
        assert b.rate == pytest.approx(50.0)
        sim.run(until=100)
        # B speeds up to 100 (NIC bound) once A's uplink share frees?
        # No: A finishes *after* B, so B ran at 50 until its own end.
        assert done["b"] == pytest.approx(2.0)
        assert done["a"] == pytest.approx(10.0)

    def test_departure_speeds_up_survivors(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=100.0, core_bandwidth=1000.0
        )
        sim, fabric = make_fabric(cfg)
        done = {}
        # Same path: share the uplink at 50/50; the short flow leaves
        # at t=1, the long one finishes its remaining 150 at 100.
        fabric.start_flow("r0h0", "r1h0", 50, lambda f: done.setdefault("short", sim.now))
        fabric.start_flow("r0h1", "r1h1", 200, lambda f: done.setdefault("long", sim.now))
        sim.run(until=100)
        assert done["short"] == pytest.approx(1.0)
        assert done["long"] == pytest.approx(1.0 + 150 / 100.0)

    def test_same_rack_skips_uplink_and_core(self):
        sim, fabric = make_fabric()
        path = fabric.route("r0h0", "r0h1")
        assert [link.name for link in path] == ["nic:r0h0", "nic:r0h1"]
        cross = fabric.route("r0h0", "r1h1")
        assert [link.name for link in cross] == [
            "nic:r0h0", "uplink:/rack0", "core", "uplink:/rack1", "nic:r1h1",
        ]


class TestFlowLifecycle:
    def test_pause_preserves_bytes_and_frees_capacity(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=100.0, core_bandwidth=1000.0
        )
        sim, fabric = make_fabric(cfg)
        done = {}
        a = fabric.start_flow("r0h0", "r1h0", 1000, lambda f: done.setdefault("a", sim.now))
        b = fabric.start_flow("r0h1", "r1h1", 1000, lambda f: done.setdefault("b", sim.now))
        sim.run(until=2.0)
        assert a.transferred == pytest.approx(100.0)
        fabric.pause_flow(a)
        assert a.state is FlowState.PAUSED
        assert b.rate == pytest.approx(100.0)  # uplink freed
        sim.run(until=4.0)
        assert a.transferred == pytest.approx(100.0)  # frozen exactly
        fabric.resume_flow(a)
        sim.run(until=1000)
        assert done["a"] > done["b"]
        assert a.transferred == pytest.approx(1000.0)

    def test_cancel_counts_discarded_bytes(self):
        sim, fabric = make_fabric(
            NetConfig(nic_bandwidth=100.0, uplink_bandwidth=100.0,
                      core_bandwidth=1000.0)
        )
        flow = fabric.start_flow("r0h0", "r1h0", 1000, lambda f: None)
        sim.run(until=3.0)
        fabric.cancel_flow(flow)
        assert flow.state is FlowState.CANCELLED
        assert fabric.cancelled_bytes == pytest.approx(300.0)
        # Idempotent.
        fabric.cancel_flow(flow)
        assert fabric.cancelled_bytes == pytest.approx(300.0)

    def test_when_transferred_milestone_exact(self):
        sim, fabric = make_fabric(
            NetConfig(nic_bandwidth=100.0, uplink_bandwidth=100.0,
                      core_bandwidth=1000.0)
        )
        hits = []
        flow = fabric.start_flow("r0h0", "r1h0", 1000, lambda f: None)
        flow.when_transferred(250, lambda: hits.append(sim.now))
        sim.run(until=1000)
        assert hits == [pytest.approx(2.5)]

    def test_negative_flow_size_rejected(self):
        sim, fabric = make_fabric()
        with pytest.raises(SimulationError):
            fabric.start_flow("r0h0", "r1h0", -1, lambda f: None)


class TestUtilization:
    def test_mean_utilization_simple(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=100.0, core_bandwidth=1000.0
        )
        sim, fabric = make_fabric(cfg)
        fabric.start_flow("r0h0", "r1h0", 100, lambda f: None)
        sim.run(until=2.0)
        # 100 bytes over a 100 B/s uplink in 2 s of wall -> 50%.
        uplink = fabric.uplink("/rack0")
        assert uplink.mean_utilization(sim.now) == pytest.approx(0.5)
        timeline = uplink.utilization_timeline(sim.now)
        assert timeline and timeline[0][1] > 0

    def test_offrack_flow_counter(self):
        sim, fabric = make_fabric()
        fabric.start_flow("r0h0", "r0h1", 10, lambda f: None)
        fabric.start_flow("r0h0", "r1h1", 10, lambda f: None)
        assert fabric.offrack_flows == 1


class TestTransferManager:
    def test_per_host_cap_and_fifo(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=1000.0,
            core_bandwidth=1000.0, max_flows_per_host=2,
        )
        sim, fabric = make_fabric(cfg, hosts_per_rack=4)
        manager = fabric.transfers
        order = []
        transfers = [
            manager.fetch(f"r0h{i}", "r1h0", 100, lambda t: order.append(t.label),
                          label=f"t{i}")
            for i in range(4)
        ]
        assert manager.active_count("r1h0") == 2
        assert manager.queued_count("r1h0") == 2
        assert transfers[2].state is TransferState.QUEUED
        sim.run(until=1000)
        assert manager.active_count("r1h0") == 0
        # FIFO: the first two (concurrent, same rate) finish before the
        # last two.
        assert set(order[:2]) == {"t0", "t1"}
        assert set(order[2:]) == {"t2", "t3"}

    def test_pause_releases_slot_to_queue(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=1000.0,
            core_bandwidth=1000.0, max_flows_per_host=1,
        )
        sim, fabric = make_fabric(cfg, hosts_per_rack=3)
        manager = fabric.transfers
        t1 = manager.fetch("r0h0", "r1h0", 1000, lambda t: None, label="t1")
        t2 = manager.fetch("r0h1", "r1h0", 1000, lambda t: None, label="t2")
        sim.run(until=1.0)
        assert t2.state is TransferState.QUEUED
        manager.pause(t1)
        assert t2.state is TransferState.ACTIVE
        sim.run(until=2.0)
        manager.resume(t1)
        assert t1.state is TransferState.QUEUED  # waits behind t2
        manager.pause(t2)
        assert t1.state is TransferState.ACTIVE
        assert t1.transferred == pytest.approx(100.0)  # kept its bytes

    def test_cancel_queued_never_starts(self):
        cfg = NetConfig(
            nic_bandwidth=100.0, uplink_bandwidth=1000.0,
            core_bandwidth=1000.0, max_flows_per_host=1,
        )
        sim, fabric = make_fabric(cfg, hosts_per_rack=3)
        manager = fabric.transfers
        manager.fetch("r0h0", "r1h0", 100, lambda t: None, label="t1")
        t2 = manager.fetch("r0h1", "r1h0", 100, lambda t: None, label="t2")
        manager.cancel(t2)
        sim.run(until=1000)
        assert t2.state is TransferState.CANCELLED
        assert t2.flow is None
        assert fabric.flows_started == 1


class TestDeterminism:
    def test_identical_runs_identical_completions(self):
        def run():
            sim, fabric = make_fabric(hosts_per_rack=3, seed=9)
            log = []
            for i in range(9):
                src = f"r{i % 2}h{i % 3}"
                dst = f"r{(i + 1) % 2}h{(i * 2) % 3}"
                fabric.transfers.fetch(
                    src, dst, 37 * MB + i, lambda t: log.append((sim.now, t.label)),
                    label=f"f{i}",
                )
            sim.run(until=10_000)
            return log

        assert run() == run()


class TestNetworkFetchItem:
    """The fetch item inside a real kernel + work engine."""

    def make_engine(self, sources, fabric=None, host="r0h0"):
        if fabric is None:
            sim, fabric = make_fabric(
                NetConfig(nic_bandwidth=float(100 * MB),
                          uplink_bandwidth=float(100 * MB),
                          core_bandwidth=float(1000 * MB))
            )
        else:
            sim = fabric.sim
        kernel = NodeKernel(sim, NodeConfig(hostname=host))
        kernel.fabric = fabric
        proc = kernel.spawn("fetcher")
        proc.dispositions.install(Signal.SIGTSTP, lambda p: None)
        item = NetworkFetchItem(sources, weight=1.0)
        engine = WorkEngine(proc, WorkPlan([item]))
        return sim, kernel, proc, engine, item

    def test_fetches_all_sources_and_finishes(self):
        sim, kernel, proc, engine, item = self.make_engine(
            [("r0h1", 50 * MB), ("r1h0", 50 * MB)]
        )
        engine.start()
        sim.run(until=10_000)
        assert engine.completed
        assert item.fetched_bytes() == 100 * MB
        assert item.fraction_done(engine) == 1.0

    def test_suspend_pauses_flows_and_resume_continues(self):
        sim, kernel, proc, engine, item = self.make_engine(
            [("r1h0", 200 * MB)]
        )
        engine.start()
        sim.run(until=0.5)
        before = item.fetched_bytes()
        assert before > 0
        kernel.signal(proc.pid, Signal.SIGTSTP)
        sim.run(until=1.0)
        frozen = item.fetched_bytes()
        sim.run(until=5.0)
        assert item.fetched_bytes() == frozen  # no progress while stopped
        assert kernel.fabric.active_flows == 0
        kernel.signal(proc.pid, Signal.SIGCONT)
        sim.run(until=10_000)
        assert engine.completed
        assert item.discarded_network_bytes == 0

    def test_kill_discards_partial_traffic(self):
        sim, kernel, proc, engine, item = self.make_engine(
            [("r1h0", 200 * MB)]
        )
        engine.start()
        sim.run(until=0.5)
        kernel.signal(proc.pid, Signal.SIGKILL)
        sim.run(until=2.0)
        assert not proc.alive
        assert item.discarded_network_bytes > 0
        assert item.discarded_network_bytes == pytest.approx(
            kernel.fabric.cancelled_bytes, rel=1e-9
        )

    def test_progress_crossing_single_source_exact(self):
        sim, kernel, proc, engine, item = self.make_engine(
            [("r1h0", 100 * MB)]
        )
        hits = []
        engine.start()
        engine.when_progress(0.5, lambda: hits.append(sim.now))
        sim.run(until=10_000)
        assert hits
        # 50 MB at 100 MB/s line rate = 0.5 s.
        assert hits[0] == pytest.approx(0.5, rel=1e-6)

    def test_pause_does_not_promote_queued_siblings(self):
        # Pausing the item releases active fetch slots; the manager's
        # pump must not spin up the same item's queued transfers into
        # phantom flows mid-pause.
        cfg = NetConfig(
            nic_bandwidth=float(100 * MB),
            uplink_bandwidth=float(100 * MB),
            core_bandwidth=float(1000 * MB),
            max_flows_per_host=2,
        )
        sim, fabric = make_fabric(cfg, hosts_per_rack=5)
        sources = [(f"r1h{i}", 50 * MB) for i in range(5)]
        sim2, kernel, proc, engine, item = self.make_engine(
            sources, fabric=fabric, host="r0h0"
        )
        engine.start()
        sim.run(until=0.2)
        started = fabric.flows_started
        assert started == 2
        kernel.signal(proc.pid, Signal.SIGTSTP)
        sim.run(until=1.0)
        assert fabric.flows_started == started
        kernel.signal(proc.pid, Signal.SIGCONT)
        sim.run(until=10_000)
        assert engine.completed

    def test_queued_transfer_keeps_partial_bytes_in_progress(self):
        # A transfer paused mid-flight and resumed behind a full queue
        # sits QUEUED with a partially-filled flow; its bytes must
        # still count toward progress and abort accounting.
        cfg = NetConfig(
            nic_bandwidth=float(100 * MB),
            uplink_bandwidth=float(100 * MB),
            core_bandwidth=float(1000 * MB),
            max_flows_per_host=1,
        )
        sim, fabric = make_fabric(cfg, hosts_per_rack=3)
        sim2, kernel, proc, engine, item = self.make_engine(
            [("r1h0", 100 * MB), ("r1h1", 100 * MB)],
            fabric=fabric,
            host="r0h0",
        )
        engine.start()
        sim.run(until=0.5)  # first transfer halfway
        first = item._transfers[0]
        fabric.transfers.pause(first)   # slot goes to the second
        fabric.transfers.resume(first)  # re-queued behind it
        assert first.state is TransferState.QUEUED
        assert first.transferred > 0
        fetched = item.fetched_bytes()
        assert fetched >= first.transferred
        kernel.signal(proc.pid, Signal.SIGKILL)
        sim.run(until=2.0)
        assert item.discarded_network_bytes >= int(first.transferred)

    def test_no_fabric_falls_back_to_instant(self):
        sim = Simulation(seed=3)
        kernel = NodeKernel(sim, NodeConfig(hostname="solo"))
        proc = kernel.spawn("fetcher")
        item = NetworkFetchItem([("elsewhere", 10 * MB)])
        engine = WorkEngine(proc, WorkPlan([item]))
        engine.start()
        sim.run(until=10)
        assert engine.completed


class TestRackTopologyEdges:
    """Satellite: topology corner cases the delay knob leans on."""

    def test_unknown_host_gets_default_rack(self):
        topo = RackTopology()
        assert topo.rack_of("ghost") == RackTopology.DEFAULT_RACK
        topo.add_host("known", "/rack1")
        assert topo.rack_of("ghost") == RackTopology.DEFAULT_RACK
        # Two unknown hosts share the default rack: rack-local.
        assert topo.locality("ghost-a", ["ghost-b"]) is Locality.RACK_LOCAL

    def test_add_host_without_rack_defaults(self):
        topo = RackTopology()
        topo.add_host("a")
        topo.add_host("b", "/rack9")
        assert topo.rack_of("a") == RackTopology.DEFAULT_RACK
        assert topo.hosts_on_rack(RackTopology.DEFAULT_RACK) == ["a"]

    def test_multi_rack_locality_ordering(self):
        topo = two_rack_topology()
        replicas = ["r0h0", "r1h0"]
        assert topo.locality("r0h0", replicas) is Locality.NODE_LOCAL
        assert topo.locality("r0h1", replicas) is Locality.RACK_LOCAL
        topo.add_host("r2h0", "/rack2")
        assert topo.locality("r2h0", replicas) is Locality.REMOTE
        # Empty replica set: nothing is local to nowhere.
        assert topo.locality("r0h0", []) is Locality.REMOTE

    def test_locality_comparisons_used_by_delay_knob(self):
        # The knob's acceptance test is `locality <= RACK_LOCAL`; pin
        # the total order so a reordering of the enum cannot silently
        # invert the policy.
        assert Locality.NODE_LOCAL < Locality.RACK_LOCAL < Locality.REMOTE
        assert Locality.NODE_LOCAL <= Locality.RACK_LOCAL
        assert not (Locality.REMOTE <= Locality.RACK_LOCAL)
        assert sorted(
            [Locality.REMOTE, Locality.NODE_LOCAL, Locality.RACK_LOCAL]
        ) == [Locality.NODE_LOCAL, Locality.RACK_LOCAL, Locality.REMOTE]
        assert min(Locality.REMOTE, Locality.RACK_LOCAL) is Locality.RACK_LOCAL
