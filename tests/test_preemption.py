"""Preemption primitives, eviction policies, advisor, locality."""

import pytest

from repro.errors import NotPreemptibleError
from repro.hadoop.states import TipState
from repro.preemption.base import PrimitiveName, make_primitive
from repro.preemption.costs import PreemptionAdvisor, PrimitiveChoice
from repro.preemption.eviction import (
    ClosestToCompletionPolicy,
    EvictionCandidate,
    FurthestFromCompletionPolicy,
    LargestMemoryPolicy,
    RandomPolicy,
    SmallestMemoryPolicy,
    collect_candidates,
)
from repro.preemption.locality import ResumeLocalityManager
from repro.sim.rng import RngRegistry
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name="job", input_mb=70, priority=0):
    return JobSpec(
        name=name,
        priority=priority,
        tasks=[
            TaskSpec(
                input_bytes=input_mb * MB, parse_rate=7 * MB, output_bytes=0
            )
        ],
    )


class TestFactory:
    def test_make_by_string(self):
        cluster = quick_cluster()
        for name in ("wait", "kill", "suspend", "natjam"):
            primitive = make_primitive(name, cluster)
            assert primitive.name is PrimitiveName(name)

    def test_make_by_enum(self):
        cluster = quick_cluster()
        primitive = make_primitive(PrimitiveName.SUSPEND, cluster)
        assert primitive.name is PrimitiveName.SUSPEND

    def test_unknown_name_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_primitive("teleport", quick_cluster())


class TestSuspendGuards:
    def test_suspend_requires_running(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        primitive = make_primitive("suspend", cluster)
        with pytest.raises(NotPreemptibleError):
            primitive.preempt(job.tips[0])

    def test_max_suspended_per_tracker(self):
        cluster = quick_cluster(map_slots=2, max_suspended_per_tracker=1)
        job_a = cluster.submit_job(job_spec("a"))
        job_b = cluster.submit_job(job_spec("b"))
        cluster.start()
        cluster.sim.run(until=6.0)
        primitive = make_primitive("suspend", cluster)
        primitive.preempt(job_a.tips[0])
        cluster.sim.run(until=9.0)
        assert job_a.tips[0].state is TipState.SUSPENDED
        with pytest.raises(NotPreemptibleError):
            primitive.preempt(job_b.tips[0])

    def test_swap_capacity_guard(self):
        cluster = quick_cluster()
        # Shrink the swap so one resident task cannot fit.
        kernel = cluster.kernel_of("node00")
        kernel.vmm.swap.capacity = 1 * MB
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=6.0)
        primitive = make_primitive("suspend", cluster)
        with pytest.raises(NotPreemptibleError):
            primitive.preempt(job.tips[0])

    def test_guard_can_be_disabled(self):
        cluster = quick_cluster()
        kernel = cluster.kernel_of("node00")
        kernel.vmm.swap.capacity = 1 * MB
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=6.0)
        primitive = make_primitive("suspend", cluster, enforce_swap_capacity=False)
        primitive.preempt(job.tips[0])  # no raise
        assert job.tips[0].state is TipState.MUST_SUSPEND


class TestEvictionPolicies:
    def make_candidates(self):
        cluster = quick_cluster()

        class FakeTip:
            def __init__(self, tip_id):
                self.tip_id = tip_id

        return [
            EvictionCandidate(FakeTip("t1"), progress=0.9, resident_bytes=100, tracker="n"),
            EvictionCandidate(FakeTip("t2"), progress=0.1, resident_bytes=900, tracker="n"),
            EvictionCandidate(FakeTip("t3"), progress=0.5, resident_bytes=500, tracker="n"),
        ]

    def test_closest_to_completion(self):
        ranked = ClosestToCompletionPolicy().rank(self.make_candidates())
        assert [c.tip_id for c in ranked] == ["t1", "t3", "t2"]

    def test_furthest_from_completion(self):
        ranked = FurthestFromCompletionPolicy().rank(self.make_candidates())
        assert [c.tip_id for c in ranked] == ["t2", "t3", "t1"]

    def test_smallest_memory(self):
        ranked = SmallestMemoryPolicy().rank(self.make_candidates())
        assert [c.tip_id for c in ranked] == ["t1", "t3", "t2"]

    def test_largest_memory(self):
        ranked = LargestMemoryPolicy().rank(self.make_candidates())
        assert [c.tip_id for c in ranked] == ["t2", "t3", "t1"]

    def test_random_is_deterministic_per_seed(self):
        rng_a = RngRegistry(9).stream("evict")
        rng_b = RngRegistry(9).stream("evict")
        a = RandomPolicy(rng_a).rank(self.make_candidates())
        b = RandomPolicy(rng_b).rank(self.make_candidates())
        assert [c.tip_id for c in a] == [c.tip_id for c in b]

    def test_choose_respects_count(self):
        policy = SmallestMemoryPolicy()
        assert len(policy.choose(self.make_candidates(), 2)) == 2
        assert policy.choose(self.make_candidates(), 0) == []

    def test_collect_candidates_from_cluster(self):
        cluster = quick_cluster(map_slots=2)
        cluster.submit_job(job_spec("a"))
        cluster.submit_job(job_spec("b", priority=1))
        cluster.start()
        cluster.sim.run(until=6.0)
        candidates = collect_candidates(cluster)
        assert len(candidates) == 2
        protected = collect_candidates(cluster, protect_jobs={"a"})
        assert len(protected) == 1


class TestAdvisor:
    def test_fresh_tasks_killed(self):
        advisor = PreemptionAdvisor()
        assert advisor.recommend(0.01, 100.0) is PrimitiveChoice.KILL

    def test_nearly_done_tasks_waited(self):
        advisor = PreemptionAdvisor()
        assert advisor.recommend(0.99, 100.0) is PrimitiveChoice.WAIT

    def test_middle_suspends_when_memory_cheap(self):
        advisor = PreemptionAdvisor()
        choice = advisor.recommend(0.5, 100.0, resident_bytes=0, memory_pressure=0.0)
        assert choice is PrimitiveChoice.SUSPEND

    def test_huge_footprint_under_pressure_avoids_suspend(self):
        advisor = PreemptionAdvisor(swap_bandwidth=10 * MB)
        choice = advisor.recommend(
            0.5, 10.0, resident_bytes=4_000 * MB, memory_pressure=1.0
        )
        assert choice is not PrimitiveChoice.SUSPEND

    def test_estimate_fields(self):
        advisor = PreemptionAdvisor()
        est = advisor.estimate(0.25, 100.0, 90 * MB, memory_pressure=1.0)
        assert est.wait_latency == pytest.approx(75.0)
        assert est.kill_redundant == pytest.approx(25.0)
        assert est.suspend_paging == pytest.approx(2.0)

    def test_bad_thresholds_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PreemptionAdvisor(fresh_threshold=0.9, nearly_done_threshold=0.5)


class TestResumeLocality:
    def test_local_resume_when_slot_free(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        tip = job.tips[0]
        cluster.when_job_progress(
            "job", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.sim.run(until=9.0)
        manager = ResumeLocalityManager(cluster, delay_threshold=5.0)
        manager.request_resume(tip)
        cluster.run_until_jobs_complete()
        assert manager.local_resumes == 1
        assert manager.non_local_restarts == 0
        assert tip.state is TipState.SUCCEEDED

    def test_non_local_restart_after_deadline(self):
        # Keep the only slot busy past the delay threshold with a long
        # high-priority job: the suspended task must restart from scratch.
        cluster = quick_cluster(map_slots=1)
        low = cluster.submit_job(job_spec("low", input_mb=35))
        cluster.start()
        tip = low.tips[0]

        def preempt():
            cluster.jobtracker.submit_job(job_spec("high", input_mb=140, priority=5))
            cluster.jobtracker.suspend_task(tip.tip_id)

        cluster.when_job_progress("low", 0.4, preempt)
        cluster.sim.run(until=9.0)
        assert tip.state is TipState.SUSPENDED
        manager = ResumeLocalityManager(cluster, delay_threshold=3.0)
        manager.request_resume(tip)
        cluster.run_until_jobs_complete(timeout=7200)
        assert manager.non_local_restarts == 1
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 2  # restarted from scratch
        assert tip.wasted_seconds > 0  # "effectively a delayed kill"

    def test_stats(self):
        cluster = quick_cluster()
        manager = ResumeLocalityManager(cluster)
        stats = manager.stats()
        assert stats == {
            "local_resumes": 0,
            "non_local_restarts": 0,
            "pending": 0,
        }
