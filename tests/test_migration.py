"""CRIU-style migration (the paper's future-work extension)."""

import pytest

from repro.errors import ResumeLocalityError, TaskStateError
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.states import TipState
from repro.preemption.migration import MigrationPrimitive
from repro.schedulers.dummy import DummyScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskSpec
from tests.conftest import fast_hadoop_config, small_node_config


def two_node_cluster(seed=1):
    return HadoopCluster(
        num_nodes=2,
        node_config=small_node_config(),
        hadoop_config=fast_hadoop_config(),
        scheduler=DummyScheduler(),
        seed=seed,
        trace=True,
    )


def stateful_job(name="mover", input_mb=70, footprint_mb=128):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(
                input_bytes=input_mb * MB,
                parse_rate=7 * MB,
                footprint_bytes=footprint_mb * MB,
                profile=MemoryProfile.STATEFUL,
                output_bytes=0,
            )
        ],
    )


class TestMigrationMechanics:
    def test_requires_suspended_state(self):
        cluster = two_node_cluster()
        primitive = MigrationPrimitive(cluster)
        job = cluster.submit_job(stateful_job())
        with pytest.raises(TaskStateError):
            primitive.migrate(job.tips[0])

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ResumeLocalityError):
            MigrationPrimitive(two_node_cluster(), network_bandwidth=0)

    def test_full_migration_round_trip(self):
        cluster = two_node_cluster()
        primitive = MigrationPrimitive(cluster, network_bandwidth=100 * MB)
        job = cluster.submit_job(stateful_job())
        tip = job.tips[0]
        records = {}

        def suspend():
            primitive.preempt(tip)

        cluster.when_job_progress("mover", 0.5, suspend)
        cluster.start()
        cluster.sim.run(until=12.0)
        assert tip.state is TipState.SUSPENDED
        source_host = tip.tracker
        records["migration"] = primitive.migrate(tip)
        cluster.run_until_jobs_complete(timeout=7200)

        record = records["migration"]
        assert record.completed
        assert record.image_bytes > 128 * MB  # footprint + jvm base
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 2
        # The restore read the shipped image before continuing.
        restore = cluster.sim.trace_log.first("preempt.migrate-restore")
        assert restore is not None

    def test_migration_preserves_progress(self):
        # Work done before the migration is not redone: the makespan
        # beats a plain kill-restart of the same scenario.
        def run(migrate: bool):
            cluster = two_node_cluster(seed=4)
            primitive = MigrationPrimitive(cluster, network_bandwidth=200 * MB)
            job = cluster.submit_job(stateful_job())
            tip = job.tips[0]

            def act():
                if migrate:
                    primitive.preempt(tip)
                else:
                    cluster.jobtracker.kill_task(tip.tip_id)

            cluster.when_job_progress("mover", 0.6, act)
            if migrate:
                def after_suspend():
                    if tip.state is TipState.SUSPENDED:
                        primitive.migrate(tip)
                    else:  # stop not confirmed yet; retry shortly
                        cluster.sim.schedule(0.5, after_suspend)

                cluster.sim.schedule(10.0, after_suspend)
            cluster.run_until_jobs_complete(timeout=7200)
            return job.finish_time - job.submit_time

        migrated = run(migrate=True)
        killed = run(migrate=False)
        assert migrated < killed

    def test_resume_during_transfer_cancels_migration(self):
        cluster = two_node_cluster()
        primitive = MigrationPrimitive(cluster, network_bandwidth=10 * MB)
        job = cluster.submit_job(stateful_job())
        tip = job.tips[0]
        cluster.when_job_progress("mover", 0.5, lambda: primitive.preempt(tip))
        cluster.start()
        cluster.sim.run(until=12.0)
        assert tip.state is TipState.SUSPENDED
        primitive.migrate(tip)
        # Resume locally before the (slow) transfer finishes.
        primitive.restore(tip)
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        # No fast-forwarded second attempt: the local resume won.
        assert tip.next_attempt_number == 1
        # Let the in-flight transfer event resolve; it must then notice
        # the task is no longer suspended and drop the record.
        cluster.sim.run(until=cluster.sim.now + 60.0)
        assert not primitive.migrations


class TestTrackerLoss:
    def test_lost_tracker_requeues_tasks(self):
        cluster = two_node_cluster()
        job = cluster.submit_job(stateful_job(input_mb=140))
        cluster.start()
        cluster.sim.run(until=8.0)
        tip = job.tips[0]
        host = tip.tracker
        assert host is not None
        cluster.jobtracker.tracker_lost(host)
        assert tip.state is TipState.UNASSIGNED
        assert tip.wasted_seconds > 0  # work died with the node
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        assert tip.tracker != host  # restarted on the surviving node

    def test_lost_tracker_with_suspended_task(self):
        # "a suspended process can only be resumed on the same machine
        # it was suspended on" -- if the machine dies, so does the image.
        cluster = two_node_cluster()
        job = cluster.submit_job(stateful_job(input_mb=140))
        tip = job.tips[0]
        cluster.when_job_progress(
            "mover", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=12.0)
        assert tip.state is TipState.SUSPENDED
        cluster.jobtracker.tracker_lost(tip.tracker)
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 2

    def test_unknown_tracker_raises(self):
        cluster = two_node_cluster()
        from repro.errors import UnknownJobError

        with pytest.raises(UnknownJobError):
            cluster.jobtracker.tracker_lost("nope")
