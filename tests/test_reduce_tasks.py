"""Reduce tasks: the primitive "behaves in the same way for both Map
and Reduce tasks" (Section IV-A)."""

import pytest

from repro.hadoop.states import TipState
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec
from tests.conftest import quick_cluster


def mr_job(name="mr", reduce_input_mb=70):
    """One map plus one reduce task."""
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB, output_bytes=16 * MB,
                     name="m0"),
            TaskSpec(
                kind=TaskKind.REDUCE,
                input_bytes=reduce_input_mb * MB,
                parse_rate=7 * MB,
                shuffle_bytes=16 * MB,
                output_bytes=8 * MB,
                name="r0",
            ),
        ],
    )


def reduce_only_job(name="red", input_mb=70):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(
                kind=TaskKind.REDUCE,
                input_bytes=input_mb * MB,
                parse_rate=7 * MB,
                shuffle_bytes=16 * MB,
                output_bytes=0,
                name="r0",
            )
        ],
    )


class TestReduceExecution:
    def test_map_and_reduce_complete(self):
        cluster = quick_cluster()
        job = cluster.submit_job(mr_job())
        cluster.run_until_jobs_complete()
        assert job.state.value == "SUCCEEDED"
        assert all(t.complete for t in job.tips)

    def test_reduce_uses_reduce_slot(self):
        cluster = quick_cluster(map_slots=1, reduce_slots=1)
        cluster.submit_job(mr_job())
        cluster.start()
        cluster.sim.run(until=6.0)
        tracker = cluster.trackers["node00"]
        # Both can run concurrently: distinct slot pools.
        assert tracker.free_map_slots == 0
        assert tracker.free_reduce_slots == 0

    def test_reduce_progress_in_thirds(self):
        cluster = quick_cluster()
        job = cluster.submit_job(reduce_only_job())
        cluster.start()
        cluster.sim.run(until=4.0)
        reduce_tip = job.tips[0]
        attempt = cluster.attempts_of("red")[0]
        # Shuffle done quickly (16 MB stream): progress near 1/3 while
        # the sort/reduce body still runs.
        assert 0.3 <= attempt.progress() <= 0.9


class TestReducePreemption:
    def test_suspend_resume_reduce(self):
        cluster = quick_cluster()
        job = cluster.submit_job(reduce_only_job())
        tip = job.tips[0]
        cluster.when_job_progress(
            "red", 0.5, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )

        def resume_later():
            if tip.state is TipState.SUSPENDED:
                cluster.jobtracker.resume_task(tip.tip_id)
            else:
                cluster.sim.schedule(1.0, resume_later)

        cluster.sim.schedule(20.0, resume_later)
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        attempt = cluster.attempts_of("red")[0]
        assert attempt.suspend_count == 1
        assert attempt.resume_count == 1
        assert tip.next_attempt_number == 1  # never restarted

    def test_kill_reduce_reschedules(self):
        cluster = quick_cluster()
        job = cluster.submit_job(reduce_only_job())
        tip = job.tips[0]
        cluster.when_job_progress(
            "red", 0.5, lambda: cluster.jobtracker.kill_task(tip.tip_id)
        )
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 2
        assert tip.wasted_seconds > 0

    def test_suspend_during_shuffle(self):
        # Suspension lands while the reduce is still shuffling; the
        # stream claim pauses and resumes exactly.
        cluster = quick_cluster()
        job = cluster.submit_job(reduce_only_job(input_mb=140))
        tip = job.tips[0]
        cluster.when_job_progress(
            "red", 0.1, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )

        def resume_later():
            if tip.state is TipState.SUSPENDED:
                cluster.jobtracker.resume_task(tip.tip_id)
            else:
                cluster.sim.schedule(1.0, resume_later)

        cluster.sim.schedule(12.0, resume_later)
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        assert tip.wasted_seconds == 0.0
