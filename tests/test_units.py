"""Units helpers: parsing, formatting, page arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    GB,
    KB,
    MB,
    PAGE_SIZE,
    TB,
    format_duration,
    format_size,
    page_align,
    pages_for,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096

    def test_integer_passthrough(self):
        assert parse_size(12345) == 12345

    def test_float_truncates(self):
        assert parse_size(12.9) == 12

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512 MB", 512 * MB),
            ("512MB", 512 * MB),
            ("2.5GB", int(2.5 * GB)),
            ("4GiB", 4 * GB),
            ("128k", 128 * KB),
            ("1 tb", TB),
            ("0", 0),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "--3MB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)


class TestFormatSize:
    def test_mb(self):
        assert format_size(512 * MB) == "512.0 MB"

    def test_kb(self):
        assert format_size(1536) == "1.5 KB"

    def test_bytes(self):
        assert format_size(17) == "17 B"

    def test_negative(self):
        assert format_size(-2 * MB) == "-2.0 MB"

    @given(st.integers(min_value=0, max_value=10 * TB))
    def test_round_trip_order_of_magnitude(self, n):
        # Parsing the formatted value lands within 10% (1 decimal place).
        text = format_size(n, precision=3)
        back = parse_size(text)
        assert abs(back - n) <= max(64, n * 0.01)


class TestFormatDuration:
    def test_hours(self):
        assert format_duration(3723.4) == "1h02m03.4s"

    def test_minutes(self):
        assert format_duration(75.25) == "1m15.2s"

    def test_seconds(self):
        assert format_duration(42.0) == "42.0s"

    def test_negative(self):
        assert format_duration(-5.0) == "-5.0s"


class TestPages:
    def test_pages_for_zero(self):
        assert pages_for(0) == 0

    def test_pages_for_one_byte(self):
        assert pages_for(1) == 1

    def test_pages_for_exact(self):
        assert pages_for(2 * PAGE_SIZE) == 2

    def test_page_align_rounds_up(self):
        assert page_align(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    @given(st.integers(min_value=0, max_value=10 * GB))
    def test_alignment_invariants(self, n):
        aligned = page_align(n)
        assert aligned >= n
        assert aligned % PAGE_SIZE == 0
        assert aligned - n < PAGE_SIZE
