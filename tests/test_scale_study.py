"""The cluster-at-scale SWIM replay experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scale_study import (
    SCENARIOS,
    _run_once,
    metrics_digest,
    run_scale_study,
)


class TestScaleCell:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            _run_once("marsbase", "kill", trackers=3, num_jobs=2, seed=1)

    def test_all_jobs_complete(self):
        out = _run_once("baseline", "wait", trackers=5, num_jobs=8, seed=99)
        assert out["jobs_completed"] == 8.0
        assert out["makespan"] > 0
        assert out["mean_sojourn"] > 0
        assert out["p95_sojourn"] >= out["mean_sojourn"] * 0.5

    def test_shuffle_heavy_runs_reduces(self):
        out = _run_once(
            "shuffle-heavy", "wait", trackers=5, num_jobs=6, seed=5
        )
        assert out["jobs_completed"] == 6.0

    def test_suspend_preempts_at_scale(self):
        out = _run_once("burst", "suspend", trackers=4, num_jobs=10, seed=17)
        assert out["jobs_completed"] == 10.0
        # Burst arrivals on a small cluster force contention; HFSP must
        # actually exercise the primitive.
        assert out["preemptions"] >= 1.0


class TestScaleStudy:
    def small_report(self, workers=1):
        return run_scale_study(
            runs=1,
            cluster_sizes=[4],
            scenarios=["baseline"],
            primitives=["wait", "kill"],
            num_jobs=6,
            workers=workers,
        )

    def test_report_shape(self):
        report = self.small_report()
        assert report.experiment_id == "scale"
        names = [series.name for series in report.series]
        assert "scale-baseline-mean-sojourn" in names
        assert "scale-baseline-wasted" in names
        rendered = report.render(plots=False)
        assert "metrics digest" in rendered
        assert report.extras["cluster_sizes"] == [4]

    def test_runs_validation(self):
        with pytest.raises(ConfigurationError):
            run_scale_study(runs=0)

    def test_digest_stable_across_invocations(self):
        assert (
            self.small_report().extras["digest"]
            == self.small_report().extras["digest"]
        )

    def test_scenarios_registry_complete(self):
        assert set(SCENARIOS) == {
            "baseline",
            "shuffle-heavy",
            "burst",
            "diurnal",
            "steady",
        }
        for shape in SCENARIOS.values():
            assert shape["arrival"] in ("poisson", "bursty", "diurnal")

    def test_metrics_digest_sensitivity(self):
        a = metrics_digest({"x": (1.0,)})
        b = metrics_digest({"x": (1.0000000000000002,)})
        assert a != b
