"""The chaos harness and its central claim: a sweep whose workers are
killed, hung and fed garbage produces results byte-identical to an
undisturbed serial run."""

import hashlib
import json
import os
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.chaos import (
    ChaosFault,
    ChaosPlan,
    corrupt_payload,
    make_plan,
    seeded_plan,
)
from repro.experiments.runner import Cell, cell_key, derive_seed, run_cells
from repro.experiments.supervisor import SupervisorConfig, supervise_cells


def _digest(value) -> str:
    """Canonical digest of a result list.

    JSON with sorted keys, not pickle: pickle memoizes by object
    identity, so byte-equal *values* can pickle differently depending
    on string interning after a worker round-trip.
    """
    blob = json.dumps(value, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------


class TestChaosFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos"):
            ChaosFault("meteor")

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault("kill-mid", delay=-1.0)

    def test_duplicate_fault_key_rejected(self):
        pair = (("k", 0), ChaosFault("kill"))
        with pytest.raises(ConfigurationError, match="repeats"):
            ChaosPlan(faults=(pair, pair))


class TestSeededPlan:
    KEYS = [f"cell-{i:02d}" for i in range(20)]

    def test_same_seed_same_plan(self):
        assert seeded_plan(self.KEYS, 7) == seeded_plan(self.KEYS, 7)

    def test_different_seed_different_plan(self):
        assert seeded_plan(self.KEYS, 7) != seeded_plan(self.KEYS, 8)

    def test_cell_order_is_irrelevant(self):
        assert seeded_plan(self.KEYS, 7) == seeded_plan(
            list(reversed(self.KEYS)), 7
        )

    def test_rate_bounds_checked(self):
        with pytest.raises(ConfigurationError, match="rate"):
            seeded_plan(self.KEYS, 7, rate=1.5)

    def test_rate_one_faults_every_cell(self):
        plan = seeded_plan(self.KEYS, 7, rate=1.0)
        assert sum(plan.counts().values()) == len(self.KEYS)

    def test_hang_plans_demand_a_timeout(self):
        plan = make_plan({("k", 0): ChaosFault("hang")})
        assert plan.requires_timeout()
        assert not make_plan(
            {("k", 0): ChaosFault("kill")}
        ).requires_timeout()

    def test_describe_tallies_kinds(self):
        plan = make_plan({
            ("a", 0): ChaosFault("kill"),
            ("b", 0): ChaosFault("corrupt"),
            ("c", 0): ChaosFault("kill"),
        })
        assert plan.counts() == {"kill": 2, "corrupt": 1}
        assert "kill=2" in plan.describe()


class TestCorruptPayload:
    def test_garbled_payload_fails_both_checks(self):
        payload = pickle.dumps({"x": list(range(100))})
        bad = corrupt_payload(payload)
        assert bad != payload
        assert hashlib.sha256(bad).hexdigest() != hashlib.sha256(
            payload
        ).hexdigest()
        with pytest.raises(Exception):
            pickle.loads(bad)

    def test_empty_payload_still_changes(self):
        assert corrupt_payload(b"") == b"\xff"


# ----------------------------------------------------------------------
# The differential claim, on toy cells
# ----------------------------------------------------------------------


def _toy_cells(n=6):
    return [
        Cell.make("tests.test_supervisor", "probe_cell", seed=i)
        for i in range(n)
    ]


def _config(plan, **overrides):
    defaults = dict(
        max_retries=2, backoff_base=0.01, backoff_cap=0.05,
        heartbeat_interval=0.05, cell_timeout=1.5, snapshot_every=None,
        chaos=plan,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestToyDifferential:
    def test_every_fault_kind_yields_clean_results(self):
        cells = _toy_cells(6)
        keys = [cell_key(c) for c in cells]
        plan = make_plan(
            {
                (keys[0], 0): ChaosFault("kill"),
                (keys[2], 0): ChaosFault("hang"),
                (keys[4], 0): ChaosFault("corrupt"),
            },
            hang_seconds=30.0,
        )
        clean = run_cells(cells, workers=1)
        sweep = supervise_cells(
            cells, list(range(6)), workers=3, config=_config(plan)
        )
        assert sweep.results == clean
        assert _digest(sweep.results) == _digest(clean)
        assert sweep.quarantined == []
        assert sweep.stats["worker_deaths"] == 1
        assert sweep.stats["timeouts"] == 1
        assert sweep.stats["corrupt_results"] == 1
        assert sweep.stats["retries"] == 3

    def test_seeded_plan_full_rate_still_clean(self):
        cells = _toy_cells(8)
        plan = seeded_plan(
            [cell_key(c) for c in cells], seed=11,
            kinds=("kill", "corrupt"), rate=1.0,
        )
        clean = run_cells(cells, workers=1)
        sweep = supervise_cells(
            cells, list(range(8)), workers=3, config=_config(plan)
        )
        assert sweep.results == clean
        assert sweep.quarantined == []

    def test_chaos_through_run_cells_cli_path(self, tmp_path):
        """The CLI arms chaos via set_supervision(chaos_seed=...); the
        sweep must come out identical to a clean serial run."""
        from repro.experiments.runner import set_supervision

        cells = _toy_cells(6)
        clean = run_cells(cells, workers=1)
        set_supervision(max_retries=3, cell_timeout=2.0, chaos_seed=3)
        try:
            chaotic = run_cells(cells, workers=3)
        finally:
            set_supervision()
        assert chaotic == clean


# ----------------------------------------------------------------------
# The differential claim, on a real replay cell (TraceLog + sketches)
# ----------------------------------------------------------------------


def _scale_cells():
    cells = []
    for primitive in ("wait", "suspend"):
        seed = derive_seed(9000, "scale", "baseline", 5, primitive, 0)
        cells.append(Cell.make(
            "repro.experiments.scale_study", "_run_once",
            scenario="baseline", primitive_name=primitive, trackers=5,
            num_jobs=5, seed=seed, trace=True,
        ))
    return cells


class TestScaleDifferential:
    def test_chaos_run_matches_serial_down_to_trace_digests(self):
        cells = _scale_cells()
        keys = [cell_key(c) for c in cells]
        plan = make_plan(
            {
                (keys[0], 0): ChaosFault("kill"),
                (keys[1], 0): ChaosFault("corrupt"),
            },
        )
        clean = run_cells(cells, workers=1)
        sweep = supervise_cells(
            cells, [0, 1], workers=2, config=_config(plan, cell_timeout=120.0)
        )
        assert sweep.quarantined == []
        assert _digest(sweep.results) == _digest(clean)
        for chaotic, baseline in zip(sweep.results, clean):
            assert chaotic["trace_digest"] == baseline["trace_digest"]
        assert sweep.stats["worker_deaths"] == 1
        assert sweep.stats["corrupt_results"] == 1

    def test_kill_mid_resumes_from_midcell_snapshot(self, tmp_path):
        """A worker SIGKILLed mid-cell leaves a .midck behind; the
        retry restores it and still matches the clean run exactly."""
        # A ~20-job cell runs ~1s wall with snapshots armed, so a kill
        # 0.3s in reliably lands mid-cell with a snapshot on disk.
        seed = derive_seed(9000, "scale", "baseline", 5, "suspend", 0)
        cells = [
            _scale_cells()[0],
            Cell.make(
                "repro.experiments.scale_study", "_run_once",
                scenario="baseline", primitive_name="suspend", trackers=5,
                num_jobs=20, seed=seed, trace=True,
            ),
        ]
        keys = [cell_key(c) for c in cells]
        plan = make_plan(
            {(keys[1], 0): ChaosFault("kill-mid", delay=0.3)},
        )
        clean = run_cells(cells, workers=1)
        sweep = supervise_cells(
            cells, [0, 1], workers=2,
            config=_config(plan, cell_timeout=120.0, snapshot_every=200.0),
            cache_dir=str(tmp_path),
        )
        assert sweep.quarantined == []
        assert _digest(sweep.results) == _digest(clean)
        assert sweep.results[1]["trace_digest"] == clean[1]["trace_digest"]
        assert sweep.stats["worker_deaths"] == 1
        # the retry consumed (and removed) the snapshot
        assert not (tmp_path / (keys[1] + ".midck")).exists()

    def test_chaos_killed_sweep_resumes_from_cache(self, tmp_path):
        """The ISSUE's resume scenario: a sweep loses a poison cell to
        quarantine, then a second run with the same cache directory
        (and no chaos) finishes it -- byte-identical to serial."""
        from repro.errors import QuarantineError

        cells = _scale_cells()
        keys = [cell_key(c) for c in cells]
        clean = run_cells(cells, workers=1)
        poison = make_plan({
            (keys[0], 0): ChaosFault("kill"),
            (keys[0], 1): ChaosFault("kill"),
        })
        cache = str(tmp_path / "sweep")
        with pytest.raises(QuarantineError):
            run_cells(
                cells, workers=2, cache_dir=cache,
                supervise=_config(poison, max_retries=1,
                                  cell_timeout=120.0),
            )
        # cell 1 persisted; cell 0 is the quarantined hole
        done = [os.path.exists(os.path.join(cache, k + ".pkl"))
                for k in keys]
        assert done == [False, True]
        resumed = run_cells(cells, workers=2, cache_dir=cache)
        assert _digest(resumed) == _digest(clean)
