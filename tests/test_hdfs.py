"""HDFS model: namespace, placement, locality, reads."""

import pytest

from repro.errors import (
    BlockNotFoundError,
    FileAlreadyExistsError,
    FileNotFoundInHDFSError,
    ReplicationError,
)
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.topology import Locality, RackTopology
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.sim.engine import Simulation
from repro.units import MB


def make_cluster(num_nodes=3, racks=1, replication=2):
    sim = Simulation(seed=4)
    topo = RackTopology()
    nn = NameNode(topo, replication=replication)
    kernels = []
    for i in range(num_nodes):
        kernel = NodeKernel(sim, NodeConfig(hostname=f"dn{i}"))
        kernels.append(kernel)
        nn.register_datanode(DataNode(kernel), rack=f"/rack{i % racks}")
    return sim, nn, kernels


class TestNamespace:
    def test_create_single_block_file(self):
        _, nn, _ = make_cluster()
        entry = nn.create_file("/data/input", 512 * MB)
        assert entry.num_blocks == 1
        assert entry.blocks[0].size == 512 * MB

    def test_multi_block_split(self):
        _, nn, _ = make_cluster()
        entry = nn.create_file("/big", int(2.5 * DEFAULT_BLOCK_SIZE))
        assert entry.num_blocks == 3
        assert entry.blocks[-1].size == DEFAULT_BLOCK_SIZE // 2
        assert sum(b.size for b in entry.blocks) == int(2.5 * DEFAULT_BLOCK_SIZE)

    def test_empty_file_single_empty_block(self):
        _, nn, _ = make_cluster()
        entry = nn.create_file("/empty", 0)
        assert entry.num_blocks == 1
        assert entry.blocks[0].size == 0

    def test_duplicate_path_rejected(self):
        _, nn, _ = make_cluster()
        nn.create_file("/x", MB)
        with pytest.raises(FileAlreadyExistsError):
            nn.create_file("/x", MB)

    def test_overwrite(self):
        _, nn, _ = make_cluster()
        nn.create_file("/x", MB)
        entry = nn.create_file("/x", 2 * MB, overwrite=True)
        assert entry.size == 2 * MB

    def test_delete(self):
        _, nn, _ = make_cluster()
        entry = nn.create_file("/x", MB)
        nn.delete_file("/x")
        assert not nn.exists("/x")
        with pytest.raises(BlockNotFoundError):
            nn.locate_block(entry.blocks[0].block_id)

    def test_delete_missing_raises(self):
        _, nn, _ = make_cluster()
        with pytest.raises(FileNotFoundInHDFSError):
            nn.delete_file("/nope")

    def test_list_files_sorted(self):
        _, nn, _ = make_cluster()
        nn.create_file("/b", MB)
        nn.create_file("/a", MB)
        assert nn.list_files() == ["/a", "/b"]

    def test_no_datanodes_rejected(self):
        nn = NameNode(RackTopology())
        with pytest.raises(ReplicationError):
            nn.create_file("/x", MB)


class TestPlacement:
    def test_replication_factor_honoured(self):
        _, nn, _ = make_cluster(num_nodes=3, replication=2)
        nn.create_file("/x", MB)
        location = nn.block_locations("/x")[0]
        assert len(location.hosts) == 2
        assert len(set(location.hosts)) == 2

    def test_replication_capped_at_cluster_size(self):
        _, nn, _ = make_cluster(num_nodes=2, replication=3)
        nn.create_file("/x", MB)
        assert len(nn.block_locations("/x")[0].hosts) == 2

    def test_writer_host_gets_first_replica(self):
        _, nn, _ = make_cluster(num_nodes=3)
        nn.create_file("/x", MB, writer_host="dn1")
        assert nn.block_locations("/x")[0].hosts[0] == "dn1"

    def test_rack_spread(self):
        _, nn, _ = make_cluster(num_nodes=4, racks=2, replication=2)
        nn.create_file("/x", MB)
        hosts = nn.block_locations("/x")[0].hosts
        racks = {nn.topology.rack_of(h) for h in hosts}
        assert len(racks) == 2

    def test_balanced_placement(self):
        _, nn, _ = make_cluster(num_nodes=3, replication=1)
        for i in range(9):
            nn.create_file(f"/f{i}", 64 * MB)
        usage = nn.usage_report()
        assert max(usage.values()) == min(usage.values())


class TestLocality:
    def test_levels(self):
        topo = RackTopology()
        topo.add_host("a", "/r1")
        topo.add_host("b", "/r1")
        topo.add_host("c", "/r2")
        assert topo.locality("a", ["a"]) is Locality.NODE_LOCAL
        assert topo.locality("b", ["a"]) is Locality.RACK_LOCAL
        assert topo.locality("c", ["a"]) is Locality.REMOTE

    def test_ordering(self):
        assert Locality.NODE_LOCAL < Locality.RACK_LOCAL < Locality.REMOTE


class TestDataNodeReads:
    def test_read_block_through_kernel_disk(self):
        sim, nn, kernels = make_cluster(num_nodes=1, replication=1)
        nn.create_file("/x", 130 * MB)
        block = nn.file("/x").blocks[0]
        dn = nn.datanode("dn0")
        done = []
        dn.read_block(block.block_id, lambda: done.append(sim.now))
        sim.run()
        expected = 130 * MB / kernels[0].config.disk_read_bw
        assert done == [pytest.approx(expected)]
        assert kernels[0].vmm.page_cache.size > 0

    def test_read_missing_block_raises(self):
        _, nn, _ = make_cluster(num_nodes=2, replication=1)
        nn.create_file("/x", MB)
        block = nn.file("/x").blocks[0]
        holder = nn.block_locations("/x")[0].hosts[0]
        other = next(h for h in ("dn0", "dn1") if h != holder)
        with pytest.raises(BlockNotFoundError):
            nn.datanode(other).read_block(block.block_id, lambda: None)

    def test_unknown_datanode_raises(self):
        _, nn, _ = make_cluster()
        with pytest.raises(FileNotFoundInHDFSError):
            nn.datanode("nope")
