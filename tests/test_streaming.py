"""Hadoop Streaming / external-state behaviour under suspension."""

import pytest

from repro.errors import ConfigurationError
from repro.hadoop.states import AttemptState, TipState
from repro.hadoop.streaming import StreamingConfig, StreamingCoprocess
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def streaming_job(name="stream", input_mb=70):
    return JobSpec(
        name=name,
        tasks=[TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB, output_bytes=0)],
    )


def launch_with_coprocess(cluster, job_name, config=None):
    """Attach a coprocess as soon as the work attempt launches."""
    holder = {}

    def on_launch(attempt):
        if attempt.role.value == "task" and "co" not in holder:
            holder["attempt"] = attempt
            holder["co"] = StreamingCoprocess(attempt, config)

    cluster.on_attempt_launched(on_launch)
    return holder


class TestStreamingConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(memory_bytes=-1)
        with pytest.raises(ConfigurationError):
            StreamingConfig(idle_timeout=0)

    def test_attach_before_launch_rejected(self):
        cluster = quick_cluster()
        job = cluster.submit_job(streaming_job())

        from repro.hadoop.attempt import AttemptRole, TaskAttempt

        attempt = TaskAttempt(
            cluster.trackers["node00"], "a", job.tips[0].tip_id, job.job_id,
            job.tips[0].spec,
        )
        with pytest.raises(ConfigurationError):
            StreamingCoprocess(attempt)


class TestWellBehavedPeer:
    def test_peer_survives_suspension(self):
        # "external software would correctly pause waiting for the next
        # input from a suspended task"
        cluster = quick_cluster()
        job = cluster.submit_job(streaming_job())
        holder = launch_with_coprocess(cluster, "stream")
        tip = job.tips[0]
        cluster.when_job_progress(
            "stream", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=12.0)
        assert tip.state is TipState.SUSPENDED
        assert holder["co"].alive
        assert not holder["co"].aborted
        cluster.jobtracker.resume_task(tip.tip_id)
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED
        # The coprocess is torn down with the task's normal exit.
        assert not holder["co"].alive

    def test_peer_memory_accounted(self):
        cluster = quick_cluster()
        cluster.submit_job(streaming_job())
        holder = launch_with_coprocess(
            cluster, "stream", StreamingConfig(memory_bytes=48 * MB)
        )
        cluster.start()
        cluster.sim.run(until=6.0)
        assert holder["co"].process.image.resident == 48 * MB

    def test_group_stop_stops_peer_too(self):
        cluster = quick_cluster()
        job = cluster.submit_job(streaming_job())
        holder = launch_with_coprocess(
            cluster, "stream", StreamingConfig(stops_with_task=True)
        )
        tip = job.tips[0]
        cluster.when_job_progress(
            "stream", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=12.0)
        assert holder["co"].process.stopped
        cluster.jobtracker.resume_task(tip.tip_id)
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED


class TestTimeoutSensitivePeer:
    def test_idle_timeout_breaks_the_task(self):
        # "when the interaction happens with a complex program, the
        # fact that they correctly handle suspended programs should be
        # tested" -- here is the failure when they do not.
        cluster = quick_cluster()
        job = cluster.submit_job(streaming_job())
        holder = launch_with_coprocess(
            cluster, "stream", StreamingConfig(idle_timeout=2.0)
        )
        tip = job.tips[0]
        cluster.when_job_progress(
            "stream", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=20.0)
        assert holder["co"].aborted
        assert not holder["co"].alive
        broken = cluster.sim.trace_log.first("streaming.broken-pipe")
        assert broken is not None
        # The task died with the pipe and was rescheduled from scratch.
        cluster.run_until_jobs_complete(timeout=7200)
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number >= 2
        assert tip.wasted_seconds > 0

    def test_fast_resume_beats_the_watchdog(self):
        cluster = quick_cluster()
        job = cluster.submit_job(streaming_job())
        holder = launch_with_coprocess(
            cluster, "stream", StreamingConfig(idle_timeout=30.0)
        )
        tip = job.tips[0]

        def suspend_then_resume():
            cluster.jobtracker.suspend_task(tip.tip_id)
            cluster.sim.schedule(
                5.0, lambda: cluster.jobtracker.resume_task(tip.tip_id)
            )

        cluster.when_job_progress("stream", 0.3, suspend_then_resume)
        cluster.run_until_jobs_complete()
        assert not holder["co"].aborted
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 1  # never restarted
