"""The pre-virtual-time resource model, kept verbatim as the oracle
for the old-vs-new differential suite (``test_resources_differential``).

This is the eager O(active claims)-per-state-change implementation the
virtual-time fluid model in :mod:`repro.osmodel.resources` replaced:
every activate/pause/cancel/speed change settles and re-arms one
completion event per active claim.  Exact for piecewise-constant
rates, which makes it a trustworthy (if slow) reference: the rewrite
must reproduce its completion times and milestone firing order.
"""


from __future__ import annotations

from typing import Any, Callable, List, Optional, Set

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.events import EventHandle

_EPS = 1e-9


class LegacyMilestone:
    """A threshold on a claim's remaining work."""

    __slots__ = ("threshold", "callback", "event", "fired")

    def __init__(self, threshold: float, callback: Callable[[], None]):
        self.threshold = threshold
        self.callback = callback
        self.event: Optional[EventHandle] = None
        self.fired = False


class LegacyClaim:
    """One unit of in-progress work on a :class:`LegacyRateResource`.

    ``on_done`` fires when ``units`` of service have been delivered.
    The owner may pause the claim (removing it from service) and later
    resume it; remaining work is preserved exactly.
    """

    __slots__ = (
        "resource",
        "initial",
        "remaining",
        "on_done",
        "label",
        "owner",
        "_last_update",
        "_event",
        "active",
        "milestones",
        "done",
    )

    def __init__(
        self,
        resource: "LegacyRateResource",
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ):
        self.resource = resource
        self.initial = float(units)
        self.remaining = float(units)
        self.on_done = on_done
        self.label = label
        self.owner = owner
        self._last_update: float = 0.0
        self._event: Optional[EventHandle] = None
        self.active = False
        self.done = False
        self.milestones: List[LegacyMilestone] = []

    @property
    def rate(self) -> float:
        """Current service rate (units/second); 0 when paused."""
        if not self.active:
            return 0.0
        return self.resource.rate_per_claim()

    def fraction_done(self) -> float:
        """Fraction of the initial work already served, settled to now."""
        if self.initial <= 0:
            return 1.0
        remaining = self.remaining
        if self.active:
            elapsed = self.resource.sim.now - self._last_update
            remaining = max(0.0, remaining - self.rate * elapsed)
        return max(0.0, min(1.0, 1.0 - remaining / self.initial))

    def add_milestone(self, remaining_at: float, callback: Callable[[], None]) -> None:
        """Fire ``callback`` when remaining work first drops to
        ``remaining_at`` units.  Fires immediately (as a zero-delay
        event) if the threshold is already crossed."""
        milestone = LegacyMilestone(remaining_at, callback)
        self.milestones.append(milestone)
        self.resource._settle_all()
        if self.remaining <= remaining_at + _EPS:
            milestone.fired = True
            self.resource.sim.call_soon(callback, label=f"milestone:{self.label}")
        elif self.active:
            self.resource._schedule_milestone(self, milestone)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LegacyClaim(label={self.label!r}, remaining={self.remaining:.1f}, "
            f"active={self.active})"
        )


class LegacyRateResource:
    """A capacity shared equally among active claims.

    Subclasses override :meth:`rate_per_claim` to model devices whose
    aggregate throughput depends on the claim count (e.g. a multi-core
    CPU serves up to ``cores`` claims at full speed).
    """

    def __init__(self, sim: Simulation, capacity: float, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._claims: Set[LegacyClaim] = set()
        #: degradation multiplier (slow-node fault injection); 1.0 = healthy
        self.speed_factor = 1.0

    # -- policy --------------------------------------------------------

    def rate_per_claim(self) -> float:
        """Units/second each active claim currently receives."""
        n = len(self._claims)
        if n == 0:
            return self.capacity * self.speed_factor
        return self.capacity * self.speed_factor / n

    def set_speed_factor(self, factor: float) -> None:
        """Degrade (or restore) the device to ``factor`` of nominal speed.

        In-flight claims are settled at the old rate first, then every
        completion/milestone event is recomputed -- the piecewise-
        constant-rate contract the engine relies on.  Models slow-node
        faults (failing disk, thermal throttling, a noisy neighbour).
        """
        if factor <= 0:
            raise SimulationError(f"{self.name}: speed factor must be positive")
        self._settle_all()
        self.speed_factor = float(factor)
        self._reschedule_all()

    # -- claim lifecycle -------------------------------------------------

    def submit(
        self,
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ) -> LegacyClaim:
        """Create and immediately activate a claim for ``units`` of work."""
        claim = LegacyClaim(self, units, on_done, label=label, owner=owner)
        self.activate(claim)
        return claim

    def create(
        self,
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ) -> LegacyClaim:
        """Create a claim without activating it (caller activates later)."""
        return LegacyClaim(self, units, on_done, label=label, owner=owner)

    def activate(self, claim: LegacyClaim) -> None:
        """Begin (or resume) serving ``claim``."""
        if claim.active or claim.done:
            return
        self._settle_all()
        claim.active = True
        claim._last_update = self.sim.now
        self._claims.add(claim)
        self._reschedule_all()

    def pause(self, claim: LegacyClaim) -> None:
        """Stop serving ``claim``, preserving its remaining work."""
        if not claim.active:
            return
        self._settle_all()
        claim.active = False
        self._claims.discard(claim)
        self._cancel_claim_events(claim)
        self._reschedule_all()

    def cancel(self, claim: LegacyClaim) -> None:
        """Abort ``claim`` entirely (completion callback never fires)."""
        self.pause(claim)
        claim.done = True

    # -- internals -------------------------------------------------------

    def _cancel_claim_events(self, claim: LegacyClaim) -> None:
        if claim._event is not None:
            claim._event.cancel()
            claim._event = None
        for milestone in claim.milestones:
            if milestone.event is not None:
                milestone.event.cancel()
                milestone.event = None

    def _settle_all(self) -> None:
        """Charge elapsed service to every active claim."""
        now = self.sim.now
        rate = self.rate_per_claim()
        for claim in self._claims:
            elapsed = now - claim._last_update
            if elapsed > 0:
                claim.remaining = max(0.0, claim.remaining - rate * elapsed)
            claim._last_update = now

    def _reschedule_all(self) -> None:
        """Recompute every active claim's completion/milestone events."""
        rate = self.rate_per_claim()
        for claim in self._claims:
            self._cancel_claim_events(claim)
            if rate <= 0:
                continue
            eta = claim.remaining / rate
            claim._event = self.sim.schedule(
                eta, self._complete, claim, label=f"{self.name}.done:{claim.label}"
            )
            for milestone in claim.milestones:
                if not milestone.fired:
                    self._schedule_milestone(claim, milestone)

    def _schedule_milestone(self, claim: LegacyClaim, milestone: LegacyMilestone) -> None:
        rate = self.rate_per_claim()
        if rate <= 0 or not claim.active:
            return
        eta = max(0.0, (claim.remaining - milestone.threshold) / rate)
        milestone.event = self.sim.schedule(
            eta,
            self._fire_milestone,
            claim,
            milestone,
            label=f"{self.name}.milestone:{claim.label}",
        )

    def _fire_milestone(self, claim: LegacyClaim, milestone: LegacyMilestone) -> None:
        if milestone.fired or not claim.active:
            return
        self._settle_all()
        if claim.remaining > milestone.threshold + 1e-6:
            # The rate dropped since this event was scheduled; try again
            # at the recomputed crossing time.
            self._schedule_milestone(claim, milestone)
            return
        milestone.fired = True
        milestone.event = None
        milestone.callback()

    def _complete(self, claim: LegacyClaim) -> None:
        if not claim.active:  # paused after the event was queued
            return
        self._settle_all()
        # Guard against float drift: the event fired, so the claim is done.
        claim.remaining = 0.0
        claim.active = False
        claim.done = True
        self._claims.discard(claim)
        self._cancel_claim_events(claim)
        # Unfired milestones are vacuously crossed at completion.
        for milestone in claim.milestones:
            if not milestone.fired:
                milestone.fired = True
                self.sim.call_soon(
                    milestone.callback, label=f"{self.name}.milestone:{claim.label}"
                )
        self._reschedule_all()
        claim.on_done()

    @property
    def active_claims(self) -> int:
        """Number of claims currently being served."""
        return len(self._claims)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r}, claims={len(self._claims)})"


class LegacyCpuResource(LegacyRateResource):
    """A multi-core CPU.

    Rates are expressed in core-seconds per second.  Up to ``cores``
    claims run at one core each; beyond that the cores are shared
    equally, matching the Linux CFS behaviour for equal-priority
    CPU-bound processes.
    """

    def __init__(self, sim: Simulation, cores: int, name: str = "cpu"):
        super().__init__(sim, capacity=float(cores), name=name)
        self.cores = cores

    def rate_per_claim(self) -> float:
        n = len(self._claims)
        if n == 0:
            return self.speed_factor
        return min(1.0, self.cores / n) * self.speed_factor


class LegacyDiskResource(LegacyRateResource):
    """Streaming disk bandwidth, equally shared among active streams.

    Capacity is bytes/second of sequential transfer.  Seek costs for
    short bursts are handled separately by
    :meth:`repro.osmodel.disk.DiskDevice.burst_time`; long streams are
    dominated by transfer time.
    """

    def __init__(self, sim: Simulation, bandwidth: float, name: str = "disk"):
        super().__init__(sim, capacity=bandwidth, name=name)
