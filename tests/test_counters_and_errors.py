"""Counters, the error hierarchy, and disk burst accounting."""

import pytest

from repro import errors
from repro.hadoop.counters import Counters
from repro.osmodel.config import NodeConfig
from repro.osmodel.disk import DiskDevice
from repro.sim.engine import Simulation
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


class TestCounters:
    def test_increment_and_value(self):
        counters = Counters()
        assert counters.increment("task", "spills") == 1
        assert counters.increment("task", "spills", 4) == 5
        assert counters.value("task", "spills") == 5
        assert counters.value("task", "missing", default=-1) == -1

    def test_set_value(self):
        counters = Counters()
        counters.set_value("task", "x", 42)
        assert counters.value("task", "x") == 42

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("task", "x", 1)
        b.increment("task", "x", 2)
        b.increment("job", "y", 3)
        a.merge(b)
        assert a.value("task", "x") == 3
        assert a.value("job", "y") == 3

    def test_iteration_and_dict(self):
        counters = Counters()
        counters.increment("g1", "a", 1)
        counters.increment("g2", "b", 2)
        triples = set(counters)
        assert ("g1", "a", 1) in triples
        assert counters.as_dict() == {"g1": {"a": 1}, "g2": {"b": 2}}

    def test_job_aggregates_attempt_counters(self):
        cluster = quick_cluster()
        job = cluster.submit_job(
            JobSpec(
                name="j",
                tasks=[TaskSpec(input_bytes=14 * MB, parse_rate=7 * MB,
                                output_bytes=0)],
            )
        )
        cluster.run_until_jobs_complete()
        assert job.counters.value("task", "input_bytes") == 14 * MB
        assert job.counters.value("task", "swapped_bytes") == 0

    def test_suspension_counters_flow_to_job(self):
        cluster = quick_cluster()
        job = cluster.submit_job(
            JobSpec(
                name="j",
                tasks=[TaskSpec(input_bytes=70 * MB, parse_rate=7 * MB,
                                output_bytes=0)],
            )
        )
        tip = job.tips[0]
        cluster.when_job_progress(
            "j", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )

        def resume_later():
            if tip.state.value == "SUSPENDED":
                cluster.jobtracker.resume_task(tip.tip_id)
            else:
                cluster.sim.schedule(1.0, resume_later)

        cluster.sim.schedule(10.0, resume_later)
        cluster.run_until_jobs_complete()
        assert job.counters.value("task", "suspensions") == 1
        assert job.counters.value("task", "resumes") == 1
        assert job.counters.value("task", "stopped_ms") > 0


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.SchedulingInPastError,
            errors.OutOfMemoryError,
            errors.SwapExhaustedError,
            errors.BlockNotFoundError,
            errors.TaskStateError,
            errors.NotPreemptibleError,
            errors.CheckpointError,
            errors.WorkerSpawnError,
            errors.ConfigurationError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_family_relationships(self):
        assert issubclass(errors.SwapExhaustedError, errors.OutOfMemoryError)
        assert issubclass(errors.OutOfMemoryError, errors.OSModelError)
        assert issubclass(errors.TaskStateError, errors.HadoopError)
        assert issubclass(errors.ResumeLocalityError, errors.PreemptionError)
        assert issubclass(errors.BlockNotFoundError, errors.HDFSError)

    def test_oom_carries_victim(self):
        exc = errors.OutOfMemoryError("boom", victim_pid=42)
        assert exc.victim_pid == 42

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.HeartbeatProtocolError("x")


class TestDiskBursts:
    def make_disk(self):
        sim = Simulation()
        config = NodeConfig(
            disk_write_bw=100 * MB,
            disk_read_bw=200 * MB,
            disk_seek_time=0.01,
            swap_cluster_bytes=1 * MB,
            hostname="d",
        )
        return DiskDevice(sim, config)

    def test_write_burst_cost(self):
        disk = self.make_disk()
        cost = disk.write_burst_cost(10 * MB)
        assert cost.seeks == 10
        assert cost.seek_time == pytest.approx(0.1)
        assert cost.transfer_time == pytest.approx(0.1)
        assert cost.total_time == pytest.approx(0.2)

    def test_read_burst_faster_than_write(self):
        disk = self.make_disk()
        write = disk.write_burst_cost(10 * MB)
        read = disk.read_burst_cost(10 * MB)
        assert read.transfer_time < write.transfer_time

    def test_zero_burst_free(self):
        disk = self.make_disk()
        cost = disk.write_burst_cost(0)
        assert cost.total_time == 0.0
        assert cost.seeks == 0

    def test_account_burst_updates_counters(self):
        disk = self.make_disk()
        cost = disk.write_burst_cost(5 * MB)
        disk.account_burst(cost, write=True)
        assert disk.bytes_written == 5 * MB
        assert disk.burst_seconds == pytest.approx(cost.total_time)
