"""Heartbeat-loss recovery: expiry, requeue, retries, blacklisting.

The recovery machinery the fault subsystem leans on: a TaskTracker
that stops heartbeating is declared lost after
``tracker_expiry_interval``; its running attempts *and* its completed
map output are rescheduled; failed attempts retry up to
``mapred.map.max.attempts``; trackers that keep failing tasks are
blacklisted.  Everything is driven through the public cluster API and
seeded, so runs are deterministic.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.hadoop.job import JobState
from repro.hadoop.states import TipState
from repro.schedulers.failure_aware import FailureAwareFifoScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster

pytestmark = pytest.mark.integration


def job_spec(name="job", tasks=4, input_mb=60):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                     output_bytes=0, name=f"{name}-{i}")
            for i in range(tasks)
        ],
    )


def recovery_cluster(seed=11, scheduler=None, **overrides):
    defaults = dict(tracker_expiry_interval=6.0, map_slots=2)
    defaults.update(overrides)
    return quick_cluster(num_nodes=2, seed=seed, scheduler=scheduler, **defaults)


class TestHeartbeatLossRecovery:
    def test_silent_tracker_declared_lost_and_job_completes(self):
        cluster = recovery_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=4.0)
        running_on_node01 = [
            t for t in job.tips if t.tracker == "node01" and t.state.active
        ]
        assert running_on_node01  # the crash must actually hit work
        cluster.crash_tracker("node01")  # silent: no report to the JT

        cluster.run_until_jobs_complete(timeout=3600.0)
        assert cluster.jobtracker.trackers_lost == 1
        assert "node01" not in cluster.jobtracker.trackers
        assert job.state is JobState.SUCCEEDED
        # Every crashed task finished elsewhere.
        for tip in running_on_node01:
            assert tip.state is TipState.SUCCEEDED
            assert tip.tracker == "node00"
            assert tip.wasted_seconds > 0

    def test_completed_map_output_rescheduled_with_lost_tracker(self):
        # Long tasks on node00, short on node01: node01's work completes,
        # then the node dies while node00 still crunches.
        cluster = recovery_cluster(seed=13)
        spec = JobSpec(
            name="mixed",
            tasks=[
                TaskSpec(input_bytes=200 * MB, parse_rate=7 * MB,
                         output_bytes=0, name="long-0"),
                TaskSpec(input_bytes=200 * MB, parse_rate=7 * MB,
                         output_bytes=0, name="long-1"),
                TaskSpec(input_bytes=20 * MB, parse_rate=7 * MB,
                         output_bytes=0, name="short-0"),
                TaskSpec(input_bytes=20 * MB, parse_rate=7 * MB,
                         output_bytes=0, name="short-1"),
            ],
        )
        job = cluster.submit_job(spec)
        cluster.start()
        cluster.sim.run(until=12.0)
        done_on_node01 = [
            t for t in job.tips
            if t.state is TipState.SUCCEEDED and t.tracker == "node01"
        ]
        assert done_on_node01  # shorts must have completed there
        cluster.crash_tracker("node01")
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        for tip in done_on_node01:
            assert tip.output_lost_count == 1
            assert tip.state is TipState.SUCCEEDED
            assert tip.tracker == "node00"  # re-executed on the survivor
            assert tip.next_attempt_number >= 2

    def test_restart_within_expiry_requeues_stale_work(self):
        cluster = recovery_cluster(seed=17, tracker_expiry_interval=60.0)
        job = cluster.submit_job(job_spec(tasks=2, input_mb=80))
        cluster.start()
        cluster.sim.run(until=4.0)
        victims = [t for t in job.tips if t.tracker == "node01"]
        cluster.crash_tracker("node01")
        # Reboot long before the (lazy) expiry would notice.
        cluster.restart_tracker("node01")
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        # The JT never declared the tracker lost, but the restart
        # handshake requeued the stale attempts.
        assert cluster.jobtracker.trackers_lost == 0
        for tip in victims:
            assert tip.state is TipState.SUCCEEDED

    def test_recovery_is_deterministic(self):
        def one_run():
            cluster = recovery_cluster(seed=23)
            job = cluster.submit_job(job_spec())
            FaultInjector(
                cluster, FaultPlan().crash(at=4.0, host="node01",
                                           restart_after=20.0)
            ).install()
            cluster.run_until_jobs_complete(timeout=3600.0)
            return (
                job.finish_time,
                job.wasted_seconds,
                cluster.jobtracker.wasted.total(),
            )

        assert one_run() == one_run()


class TestAttemptRetries:
    def test_transient_failure_retried_and_recorded(self):
        cluster = recovery_cluster(seed=29)
        job = cluster.submit_job(job_spec(tasks=2, input_mb=60))
        FaultInjector(cluster, FaultPlan().fail_task(at=3.0)).install()
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        failed = [t for t in job.tips if t.failed_attempt_count > 0]
        assert len(failed) == 1
        tip = failed[0]
        assert tip.failed_on  # the host is remembered
        assert cluster.jobtracker.wasted.by_cause().get("task-failure", 0) > 0

    def test_retry_cap_fails_the_job(self):
        cluster = recovery_cluster(seed=31, map_max_attempts=2)
        job = cluster.submit_job(
            JobSpec(name="doomed", tasks=[
                TaskSpec(input_bytes=120 * MB, parse_rate=7 * MB,
                         output_bytes=0, name="victim"),
            ])
        )
        # Keep failing the only task; the cap is 2 attempts.
        plan = FaultPlan()
        for at in (3.0, 10.0, 17.0, 24.0):
            plan.fail_task(at=at)
        FaultInjector(cluster, plan).install()
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.FAILED
        assert job.tips[0].failed_attempt_count == 2
        assert job.tips[0].state is TipState.FAILED


class TestBlacklisting:
    def test_failing_tracker_blacklisted_and_avoided(self):
        cluster = recovery_cluster(seed=37, tracker_blacklist_threshold=2)
        job = cluster.submit_job(job_spec(tasks=6, input_mb=40))
        plan = FaultPlan().fail_task(at=2.5, host="node01").fail_task(
            at=5.0, host="node01"
        )
        FaultInjector(cluster, plan).install()
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        assert "node01" in cluster.jobtracker.blacklisted
        # Work assigned after the blacklist trip all landed on node00.
        blacklist_time = 5.0
        late = [t for t in job.tips if (t.last_launched_at or 0) > blacklist_time + 3]
        assert late and all(t.tracker == "node00" for t in late)

    def test_failure_aware_scheduler_skips_blacklisted_tracker(self):
        scheduler = FailureAwareFifoScheduler()
        cluster = recovery_cluster(seed=41, scheduler=scheduler)
        cluster.submit_job(job_spec(tasks=4))
        cluster.start()
        cluster.sim.run(until=2.0)
        cluster.jobtracker.blacklisted.add("node00")
        assert scheduler.assign_tasks("node00", 2, 2) == []
        # The healthy tracker is still served.
        assert isinstance(scheduler.assign_tasks("node01", 0, 0), list)
