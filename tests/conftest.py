"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.config import HadoopConfig
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.sim.engine import Simulation
from repro.units import GB, MB


@pytest.fixture
def sim() -> Simulation:
    """A fresh deterministic simulation with tracing on."""
    return Simulation(seed=7, trace=True)


@pytest.fixture
def kernel(sim: Simulation) -> NodeKernel:
    """A default 4 GB node kernel."""
    return NodeKernel(sim, NodeConfig(hostname="testnode"))


def small_node_config(**overrides) -> NodeConfig:
    """A 1 GB node for memory-pressure tests (small numbers, fast)."""
    defaults = dict(
        ram_bytes=1 * GB,
        os_reserved_bytes=128 * MB,
        swap_bytes=2 * GB,
        cores=2,
        page_cache_min_bytes=16 * MB,
        working_set_protect_bytes=64 * MB,
        alloc_chunk_bytes=32 * MB,
        hostname="smallnode",
    )
    defaults.update(overrides)
    return NodeConfig(**defaults)


def fast_hadoop_config(**overrides) -> HadoopConfig:
    """Hadoop config with short latencies for focused unit tests."""
    defaults = dict(
        heartbeat_interval=1.0,
        oob_heartbeat_latency=0.05,
        rpc_latency=0.01,
        jvm_startup_time=0.2,
        jvm_base_memory=32 * MB,
        task_finalize_time=0.05,
        task_cleanup_duration=0.5,
        job_setup_duration=0.2,
        job_cleanup_duration=0.2,
        task_time_jitter=0.0,
    )
    defaults.update(overrides)
    return HadoopConfig(**defaults)


def quick_cluster(
    num_nodes: int = 1, scheduler=None, seed: int = 1, **hadoop_overrides
) -> HadoopCluster:
    """A small, fast cluster for integration tests."""
    return HadoopCluster(
        num_nodes=num_nodes,
        node_config=small_node_config(),
        hadoop_config=fast_hadoop_config(**hadoop_overrides),
        scheduler=scheduler,
        seed=seed,
        trace=True,
    )
