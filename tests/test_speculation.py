"""Speculative execution: stragglers, backups, first-finisher-wins.

The straggler scenarios use the fault injector's slow-node event so
the progress-rate divergence is real (the degraded node's CPU and
disk genuinely run slower), not scripted.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.hadoop.job import JobState
from repro.hadoop.states import AttemptState, TipState
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster

pytestmark = pytest.mark.integration

SLOW_HOST = "node01"


def spec_cluster(seed=3, **overrides):
    defaults = dict(
        map_slots=2,
        speculative_execution=True,
        speculative_lag=5.0,
        speculative_slowness=0.5,
    )
    defaults.update(overrides)
    return quick_cluster(num_nodes=2, seed=seed, **defaults)


def job_spec(tasks=4, input_mb=60, name="spec"):
    return JobSpec(
        name=name,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB,
                     output_bytes=0, name=f"{name}-{i}")
            for i in range(tasks)
        ],
    )


def run_with_straggler(cluster, job, factor=0.15, at=1.0):
    FaultInjector(
        cluster, FaultPlan().slow_node(at=at, host=SLOW_HOST, factor=factor)
    ).install()
    cluster.run_until_jobs_complete(timeout=3600.0)
    return job


class TestStragglerBackups:
    def test_straggler_gets_backup_and_job_finishes_early(self):
        cluster = spec_cluster()
        job = cluster.submit_job(job_spec())
        run_with_straggler(cluster, job)
        assert job.state is JobState.SUCCEEDED
        assert cluster.jobtracker.speculator.backups_launched >= 1
        # At ~15% speed a 60 MB task body takes ~57 s alone; backups
        # must beat that decisively.
        assert job.finish_time < 45.0
        # Every winner ran on the healthy node.
        for tip in job.tips:
            assert tip.tracker == "node00"

    def test_first_finisher_wins_and_loser_is_killed(self):
        cluster = spec_cluster(seed=5)
        job = cluster.submit_job(job_spec())
        run_with_straggler(cluster, job)
        speculated = [t for t in job.tips if t.next_attempt_number >= 2]
        assert speculated
        killed = [
            a
            for tracker in cluster.trackers.values()
            for a in tracker.attempts.values()
            if a.state is AttemptState.KILLED
        ]
        assert killed  # the losing primaries were reaped
        assert cluster.jobtracker.wasted.by_cause().get(
            "speculation-loser", 0
        ) > 0

    def test_no_speculation_when_disabled(self):
        cluster = quick_cluster(num_nodes=2, seed=3, map_slots=2)
        assert cluster.jobtracker.speculator is None
        job = cluster.submit_job(job_spec())
        run_with_straggler(cluster, job)
        assert job.state is JobState.SUCCEEDED
        assert all(t.next_attempt_number == 1 for t in job.tips)

    def test_speculation_is_deterministic(self):
        def one_run(seed):
            cluster = spec_cluster(seed=seed)
            job = cluster.submit_job(job_spec())
            run_with_straggler(cluster, job)
            return (job.finish_time, cluster.jobtracker.wasted.total())

        assert one_run(9) == one_run(9)


class TestSuspendInteraction:
    def test_suspended_attempt_is_not_a_straggler(self):
        # A suspended task's progress is frozen by *policy*; the
        # speculator must not read that as slowness.
        cluster = spec_cluster(seed=7, speculative_lag=3.0)
        job = cluster.submit_job(job_spec(tasks=3, input_mb=80))
        tip = job.tips[0]
        cluster.when_job_progress(
            "spec", 0.1, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=60.0)
        assert tip.state is TipState.SUSPENDED
        assert not tip.has_speculative
        assert tip.next_attempt_number == 1

    def test_backup_wins_over_suspended_primary(self):
        # Regression: the straggling primary gets a backup, then the
        # preemption API suspends the primary; when the backup finishes
        # the tip must complete (SUSPENDED -> SUCCEEDED) and the frozen
        # loser must be killed -- this used to crash the heartbeat with
        # an illegal-transition error.
        cluster = spec_cluster(seed=13)
        job = cluster.submit_job(job_spec())
        FaultInjector(
            cluster, FaultPlan().slow_node(at=1.0, host=SLOW_HOST, factor=0.15)
        ).install()
        cluster.start()
        suspended = []

        def freeze_speculated() -> None:
            for tip in job.tips:
                if tip.has_speculative and tip.state is TipState.RUNNING:
                    cluster.jobtracker.suspend_task(tip.tip_id)
                    suspended.append(tip)
                    return

        # Poll until a backup exists, then suspend its primary.
        def arm(delay=0.5):
            if suspended:
                return
            freeze_speculated()
            if not suspended:
                cluster.sim.schedule(delay, arm)

        cluster.sim.schedule(6.0, arm)
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert suspended, "scenario never produced a backup to suspend"
        assert job.state is JobState.SUCCEEDED
        for tip in suspended:
            assert tip.state is TipState.SUCCEEDED
            assert tip.tracker == "node00"  # the backup's host won

    def test_resumed_victim_is_not_a_straggler(self):
        # Regression: time spent suspended must not count into the
        # progress rate -- a resumed victim with healthy throughput
        # used to look like an extreme straggler and got a redundant
        # backup that wasted the preserved work.
        cluster = spec_cluster(seed=17, speculative_lag=3.0)
        job = cluster.submit_job(job_spec(tasks=4, input_mb=80))
        tip = job.tips[0]
        cluster.when_job_progress(
            "spec", 0.1, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        # Resume well past the speculative lag, then run to completion.
        cluster.sim.schedule(
            20.0, lambda: cluster.jobtracker.resume_task(tip.tip_id)
        )
        cluster.run_until_jobs_complete(timeout=3600.0)
        assert job.state is JobState.SUCCEEDED
        assert tip.suspended_seconds > 5.0  # the pause really happened
        assert cluster.jobtracker.speculator.backups_launched == 0
        assert tip.next_attempt_number == 1

    def test_suspended_peer_does_not_poison_the_mean(self):
        # With one suspended task and healthy peers, nobody should be
        # speculated: the frozen task is excluded from the rate pool.
        cluster = spec_cluster(seed=11, speculative_lag=3.0)
        job = cluster.submit_job(job_spec(tasks=4, input_mb=80))
        tip = job.tips[0]
        cluster.when_job_progress(
            "spec", 0.1, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.start()
        cluster.sim.run(until=60.0)
        assert cluster.jobtracker.speculator.backups_launched == 0
