"""Hypothesis property suite for the memory-accounting invariants.

Section III-A's constraint is only enforceable if the underlying
accounting never drifts, so these properties drive
:class:`~repro.osmodel.swap.SwapArea` and
:class:`~repro.osmodel.vmm.VirtualMemoryManager` with random operation
sequences and pin:

* ``used <= capacity`` and per-process swap sums equal to the device
  total, under any interleaving of page-out/page-in/release;
* reclaim conserves bytes: what leaves the page cache, clean pools and
  dirty pools is exactly what shows up as free RAM, and process
  virtual sizes never change under reclaim;
* suspend-then-resume restores resident sets exactly (the paper's
  "paged out and in at most once" round trip).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError, SwapExhaustedError
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.signals import Signal
from repro.osmodel.swap import SwapArea
from repro.sim.engine import Simulation
from repro.units import MB, page_align

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PAGE = 4096
sizes = st.integers(min_value=0, max_value=64 * MB)
pids = st.integers(min_value=1, max_value=4)


# -- SwapArea ----------------------------------------------------------------

swap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("out"), pids, sizes),
        st.tuples(st.just("in"), pids, sizes),
        st.tuples(st.just("release"), pids, st.just(0)),
    ),
    max_size=60,
)


class TestSwapAreaProperties:
    @SETTINGS
    @given(capacity=st.integers(min_value=0, max_value=128 * MB), ops=swap_ops)
    def test_accounting_invariants_under_any_interleaving(self, capacity, ops):
        area = SwapArea(capacity=page_align(capacity))
        lifetime_out = 0
        for op, pid, nbytes in ops:
            nbytes = page_align(nbytes)
            try:
                if op == "out":
                    area.page_out(pid, nbytes)
                    lifetime_out += nbytes if nbytes > 0 else 0
                elif op == "in":
                    area.page_in(pid, nbytes)
                else:
                    area.release(pid)
            except SwapExhaustedError:
                # Overflow/underflow rejected; state must stay intact.
                pass
            area.check_invariants()
            assert 0 <= area.used <= area.capacity
            assert area.free == area.capacity - area.used
            # Per-process swap sums equal the device total.
            assert sum(area.per_process.values()) == area.used
            assert all(held > 0 for held in area.per_process.values())
            assert area.total_in <= area.total_out == lifetime_out
            # Lifetime page-out per pid never shrinks below current holdings.
            for pid_, held in area.per_process.items():
                assert area.lifetime_swapped_bytes(pid_) >= held

    @SETTINGS
    @given(nbytes=st.integers(min_value=PAGE, max_value=64 * MB))
    def test_overflow_rejected_exactly_at_capacity(self, nbytes):
        nbytes = page_align(nbytes)
        area = SwapArea(capacity=nbytes - PAGE)
        with pytest.raises(SwapExhaustedError):
            area.page_out(1, nbytes)
        assert area.used == 0 and not area.per_process


# -- VirtualMemoryManager ----------------------------------------------------


def _kernel(ram_mb=512, swap_mb=256) -> NodeKernel:
    sim = Simulation(seed=3, trace=False)
    return NodeKernel(
        sim,
        NodeConfig(
            ram_bytes=ram_mb * MB,
            os_reserved_bytes=0,
            swap_bytes=swap_mb * MB,
            page_cache_min_bytes=0,
            working_set_protect_bytes=16 * MB,
            alloc_chunk_bytes=32 * MB,
            hostname="prop",
        ),
    )


alloc_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=96 * MB),  # allocation
        st.booleans(),  # stopped?
    ),
    min_size=1,
    max_size=4,
)


class TestReclaimConservation:
    @SETTINGS
    @given(
        plans=alloc_plans,
        cache_mb=st.integers(min_value=0, max_value=128),
        demand=st.integers(min_value=PAGE, max_value=256 * MB),
    )
    def test_make_room_conserves_bytes(self, plans, cache_mb, demand):
        kernel = _kernel()
        vmm = kernel.vmm
        procs = []
        for i, (nbytes, stopped) in enumerate(plans):
            proc = kernel.spawn(f"p{i}")
            proc.image.allocate(page_align(nbytes), dirty=True, now=float(i))
            if stopped:
                kernel.signal(proc.pid, Signal.SIGSTOP)
            procs.append(proc)
        assume(vmm.free_ram() >= 0)
        vmm.cache_file_read(cache_mb * MB)
        requester = procs[-1]

        cache_before = vmm.page_cache.size
        free_before = vmm.free_ram()
        swap_before = vmm.swap.used
        virtual_before = {p.pid: p.image.virtual for p in procs}
        resident_before = {p.pid: p.image.resident for p in procs}

        try:
            result = vmm.make_room(requester, demand)
        except OutOfMemoryError:
            # RAM + swap genuinely cannot satisfy the demand; the
            # failed reclaim must still leave the accounting coherent.
            kernel.check_invariants()
            return

        kernel.check_invariants()
        # Reclaim never changes any process's virtual size.
        for proc in procs:
            assert proc.image.virtual == virtual_before[proc.pid]
        # Every byte freed from cache / clean pools / dirty pools is a
        # byte of free RAM, and nothing else moved.
        assert vmm.free_ram() - free_before == result.freed_total
        assert cache_before - vmm.page_cache.size == result.freed_from_cache
        assert vmm.swap.used - swap_before == result.swapped_out
        dropped = sum(
            resident_before[p.pid] - p.image.resident for p in procs
        )
        assert dropped == result.dropped_clean + result.swapped_out
        # The demand was met.
        assert vmm.free_ram() >= page_align(demand)

    @SETTINGS
    @given(
        victim_mb=st.integers(min_value=16, max_value=160),
        pressure_mb=st.integers(min_value=200, max_value=480),
    )
    def test_suspend_then_resume_restores_resident_exactly(
        self, victim_mb, pressure_mb
    ):
        kernel = _kernel(ram_mb=512, swap_mb=512)
        vmm = kernel.vmm
        victim = kernel.spawn("victim")
        victim.image.allocate(victim_mb * MB, dirty=True, now=0.0)
        resident_before = victim.image.resident
        virtual_before = victim.image.virtual

        kernel.signal(victim.pid, Signal.SIGSTOP)
        hog = kernel.spawn("hog")
        try:
            vmm.make_room(hog, pressure_mb * MB)
            hog.image.allocate(pressure_mb * MB, dirty=True, now=1.0)
        except OutOfMemoryError:
            assume(False)
        kernel.check_invariants()
        assert victim.image.virtual == virtual_before

        # The preempting work finishes and the victim resumes: fault
        # every swapped page back in.
        hog.image.free(hog.image.virtual, now=2.0)
        kernel.signal(victim.pid, Signal.SIGCONT)
        vmm.fault_in(victim)
        kernel.check_invariants()
        assert victim.image.swapped == 0
        assert victim.image.resident == resident_before
        assert victim.image.virtual == virtual_before
        assert vmm.swap.swapped_bytes(victim.pid) == 0


class TestHeadroomSnapshot:
    @SETTINGS
    @given(plans=alloc_plans, cache_mb=st.integers(min_value=0, max_value=64))
    def test_headroom_matches_componentwise_accounting(self, plans, cache_mb):
        kernel = _kernel()
        vmm = kernel.vmm
        for i, (nbytes, stopped) in enumerate(plans):
            proc = kernel.spawn(f"p{i}")
            proc.image.allocate(page_align(nbytes), dirty=True, now=float(i))
            if stopped:
                kernel.signal(proc.pid, Signal.SIGSTOP)
        assume(vmm.free_ram() >= 0)
        vmm.cache_file_read(cache_mb * MB)

        head = kernel.memory_headroom()
        assert head.free_ram == vmm.free_ram()
        assert head.evictable_cache == vmm.page_cache.evictable
        assert head.free_swap == vmm.swap.free
        assert (
            head.running_resident + head.stopped_resident
            == vmm.used_by_processes()
        )
        assert head.stopped_resident == sum(
            p.image.resident for p in kernel.stopped_processes()
        )
        assert head.stopped_count == len(kernel.stopped_processes())
        assert head.suspend_budget == (
            head.free_ram + head.evictable_cache + head.free_swap
        )
