"""TaskTracker slot accounting and the heartbeat loop.

Uses a full mini-cluster because the TaskTracker is meaningless
without its JobTracker; the assertions here focus on the TT side
(slots, out-of-band heartbeats, kill cleanup).
"""

import pytest

from repro.hadoop.states import AttemptState, TipState
from repro.schedulers.fifo import FifoScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def small_job(name="job", tasks=1, input_mb=14, priority=0):
    return JobSpec(
        name=name,
        priority=priority,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB, output_bytes=0,
                     name=f"{name}-{i}")
            for i in range(tasks)
        ],
    )


class TestSlots:
    def test_slot_occupied_while_running(self):
        cluster = quick_cluster()
        tracker = cluster.trackers["node00"]
        cluster.submit_job(small_job(input_mb=70))  # ~10 s map
        cluster.start()
        cluster.sim.run(until=6.0)
        assert tracker.free_map_slots == 0
        cluster.run_until_jobs_complete()
        assert tracker.free_map_slots == tracker.map_slots

    def test_suspended_attempt_releases_slot(self):
        cluster = quick_cluster()
        tracker = cluster.trackers["node00"]
        job = cluster.submit_job(small_job())
        cluster.start()

        def suspend():
            cluster.jobtracker.suspend_task(job.tips[0].tip_id)

        cluster.when_job_progress("job", 0.3, suspend)
        cluster.sim.run(until=10.0)
        suspended = tracker.suspended_attempts()
        assert len(suspended) == 1
        assert tracker.free_map_slots == tracker.map_slots
        assert suspended[0].state is AttemptState.SUSPENDED

    def test_resume_reoccupies_slot(self):
        cluster = quick_cluster()
        tracker = cluster.trackers["node00"]
        job = cluster.submit_job(small_job(input_mb=70))  # ~10 s map
        cluster.start()
        cluster.when_job_progress(
            "job", 0.3, lambda: cluster.jobtracker.suspend_task(job.tips[0].tip_id)
        )
        cluster.sim.run(until=10.0)
        cluster.jobtracker.resume_task(job.tips[0].tip_id)
        cluster.sim.run(until=14.0)
        assert tracker.free_map_slots == tracker.map_slots - 1
        cluster.run_until_jobs_complete()
        assert job.tips[0].state is TipState.SUCCEEDED

    def test_kill_holds_slot_for_cleanup(self):
        cluster = quick_cluster(task_cleanup_duration=2.0)
        tracker = cluster.trackers["node00"]
        job = cluster.submit_job(small_job())
        cluster.start()
        cluster.when_job_progress(
            "job", 0.3, lambda: cluster.jobtracker.kill_task(job.tips[0].tip_id)
        )
        cluster.sim.run(until=6.5)
        # The victim is dead but the cleanup attempt still owns the slot.
        killed = [
            a for a in tracker.attempts.values() if a.state is AttemptState.KILLED
        ]
        assert killed
        record = cluster.sim.trace_log.first("attempt.cleanup-start")
        assert record is not None
        done = cluster.sim.trace_log.first("attempt.cleanup-done")
        assert done is None or done.time - record.time >= 2.0 - 1e-6


class TestHeartbeats:
    def test_periodic_heartbeats(self):
        cluster = quick_cluster(heartbeat_interval=1.0)
        cluster.start()
        cluster.sim.run(until=5.6)
        tracker = cluster.trackers["node00"]
        assert tracker.heartbeats_sent >= 5

    def test_oob_heartbeat_on_completion(self):
        cluster = quick_cluster()
        cluster.submit_job(small_job(input_mb=7))
        cluster.run_until_jobs_complete()
        oob = cluster.sim.trace_log.find("tt.oob-heartbeat")
        # The engine label is on the scheduled event; look for sequence
        # instead: completion must be learned faster than one interval.
        job = cluster.job_by_name("job")
        assert job.finish_time is not None

    def test_report_includes_attempt_status(self):
        cluster = quick_cluster()
        cluster.submit_job(small_job(input_mb=70))
        cluster.start()
        cluster.sim.run(until=6.0)
        report = cluster.trackers["node00"].build_report()
        states = {s.attempt_id: s.state for s in report.attempts}
        assert any(state is AttemptState.RUNNING for state in states.values())

    def test_terminal_attempt_reported_once(self):
        cluster = quick_cluster()
        cluster.submit_job(small_job(input_mb=7))
        cluster.run_until_jobs_complete()
        tracker = cluster.trackers["node00"]
        report = tracker.build_report()
        assert all(not s.state.terminal for s in report.attempts)


class TestMultiSlot:
    def test_parallel_tasks_on_two_slots(self):
        cluster = quick_cluster(map_slots=2)
        cluster.submit_job(small_job(tasks=2))
        cluster.run_until_jobs_complete()
        job = cluster.job_by_name("job")
        starts = [t.first_launched_at for t in job.tips]
        # Both tasks ran concurrently (second did not wait for first).
        assert abs(starts[0] - starts[1]) < 5.0

    def test_slot_limit_respected(self):
        cluster = quick_cluster(map_slots=1)
        cluster.submit_job(small_job(tasks=2))
        cluster.start()
        cluster.sim.run(until=8.0)
        tracker = cluster.trackers["node00"]
        running = [
            a
            for a in tracker.attempts.values()
            if a.state is AttemptState.RUNNING and a.role.value == "task"
        ]
        assert len(running) <= 1
        cluster.run_until_jobs_complete()
        cluster.check_invariants()
