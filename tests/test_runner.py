"""The parallel experiment runner: sharding, seeds, ordering."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    Cell,
    default_workers,
    derive_seed,
    execute_cell,
    run_cells,
)


def probe_cell(seed: int, scale: float = 1.0) -> dict:
    """Deterministic toy cell; importable from worker processes."""
    return {"seed": seed, "value": seed * scale}


def failing_cell(seed: int) -> None:
    raise ValueError(f"cell {seed} exploded")


def interrupting_cell(seed: int) -> None:
    raise KeyboardInterrupt


class TestDeriveSeed:
    def test_stable_golden_value(self):
        # Pinned: if this changes, every recorded experiment digest
        # silently shifts meaning.
        assert derive_seed(9000, "scale", "baseline", 25, "suspend", 0) == (
            2639974939052086021
        )

    def test_coordinates_matter_worker_count_does_not(self):
        a = derive_seed(1, "s", 25, "kill", 0)
        b = derive_seed(1, "s", 25, "kill", 1)
        c = derive_seed(1, "s", 100, "kill", 0)
        assert len({a, b, c}) == 3
        # No argument anywhere encodes worker count or order: the same
        # coordinates always map to the same seed.
        assert a == derive_seed(1, "s", 25, "kill", 0)

    def test_seed_fits_in_63_bits(self):
        for rep in range(50):
            seed = derive_seed(7, "x", rep)
            assert 0 <= seed < 2**63


class TestCell:
    def test_make_sorts_params(self):
        cell = Cell.make("m", "f", zebra=1, alpha=2)
        assert cell.params == (("alpha", 2), ("zebra", 1))
        assert cell.kwargs == {"alpha": 2, "zebra": 1}

    def test_execute_by_module_path(self):
        cell = Cell.make("tests.test_runner", "probe_cell", seed=4, scale=2.0)
        assert execute_cell(cell) == {"seed": 4, "value": 8.0}


class TestRunCells:
    def cells(self, n=4):
        return [
            Cell.make("tests.test_runner", "probe_cell", seed=i) for i in range(n)
        ]

    def test_serial_order_preserved(self):
        results = run_cells(self.cells(), workers=1)
        assert [r["seed"] for r in results] == [0, 1, 2, 3]

    def test_parallel_identical_to_serial(self):
        serial = run_cells(self.cells(6), workers=1)
        parallel = run_cells(self.cells(6), workers=3)
        assert serial == parallel

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            run_cells(self.cells(), workers=0)

    def test_empty_cells(self):
        assert run_cells([], workers=4) == []

    def test_single_cell_skips_pool(self):
        assert run_cells(self.cells(1), workers=8)[0]["seed"] == 0

    def test_worker_exception_propagates(self):
        bad = [Cell.make("tests.test_runner", "failing_cell", seed=1)]
        with pytest.raises(ValueError, match="exploded"):
            run_cells(bad, workers=1)
        with pytest.raises(ValueError, match="exploded"):
            run_cells(bad + self.cells(2), workers=2)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_pool_sized_by_remaining_work_not_grid(self, tmp_path, monkeypatch):
        """A warm cache leaves 2 of 6 cells; asking for 8 workers must
        fork at most 2, not min(8, len(grid))."""
        import repro.experiments.supervisor as supervisor_mod

        cells = self.cells(6)
        cache = str(tmp_path / "sweep")
        run_cells(cells, workers=1, cache_dir=cache)
        from repro.experiments.runner import _cache_path

        os.remove(_cache_path(cache, cells[1]))
        os.remove(_cache_path(cache, cells[4]))

        seen = {}

        def fake_supervise(cell_list, todo, workers, *args, **kwargs):
            seen["workers"] = workers
            seen["todo"] = list(todo)
            from repro.experiments.supervisor import SweepResult

            results = [execute_cell(cell_list[i]) for i in todo]
            on_finish = kwargs.get("on_finish")
            if on_finish is not None:
                for position, index in enumerate(todo):
                    on_finish(index, results[position])
            return SweepResult(results, [], {})

        monkeypatch.setattr(supervisor_mod, "supervise_cells", fake_supervise)
        results = run_cells(cells, workers=8, cache_dir=cache)
        assert seen["workers"] == 2
        assert seen["todo"] == [1, 4]
        assert [r["seed"] for r in results] == [0, 1, 2, 3, 4, 5]

    def test_corrupt_cache_quarantined_with_warning(self, tmp_path, capsys):
        from repro.experiments.runner import _cache_path

        cells = self.cells(3)
        cache = str(tmp_path / "sweep")
        reference = run_cells(cells, workers=1, cache_dir=cache)
        path = _cache_path(cache, cells[1])
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05garbage-truncated")
        assert run_cells(cells, workers=1, cache_dir=cache) == reference
        err = capsys.readouterr().err
        assert "corrupt cell cache" in err
        assert os.path.exists(f"{path}.corrupt")  # original preserved
        assert os.path.exists(path)  # re-run result re-cached

    def test_keyboard_interrupt_flushes_manifest(self, tmp_path, capsys):
        """Ctrl-C mid-sweep: finished cells stay checkpointed and the
        manifest reflects them before the interrupt propagates."""
        cells = self.cells(2) + [
            Cell.make("tests.test_runner", "interrupting_cell", seed=0),
        ]
        cache = str(tmp_path / "sweep")
        with pytest.raises(KeyboardInterrupt):
            run_cells(cells, workers=1, cache_dir=cache)
        with open(os.path.join(cache, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["done"] == 2
        assert [e["done"] for e in manifest["cells"]] == [True, True, False]
        assert "interrupted" in capsys.readouterr().err
        # resuming with the same directory completes the healthy cells
        healthy = cells[:2]
        assert run_cells(healthy, workers=1, cache_dir=cache) == [
            probe_cell(0), probe_cell(1)
        ]
