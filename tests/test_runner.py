"""The parallel experiment runner: sharding, seeds, ordering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    Cell,
    default_workers,
    derive_seed,
    execute_cell,
    run_cells,
)


def probe_cell(seed: int, scale: float = 1.0) -> dict:
    """Deterministic toy cell; importable from worker processes."""
    return {"seed": seed, "value": seed * scale}


def failing_cell(seed: int) -> None:
    raise ValueError(f"cell {seed} exploded")


class TestDeriveSeed:
    def test_stable_golden_value(self):
        # Pinned: if this changes, every recorded experiment digest
        # silently shifts meaning.
        assert derive_seed(9000, "scale", "baseline", 25, "suspend", 0) == (
            2639974939052086021
        )

    def test_coordinates_matter_worker_count_does_not(self):
        a = derive_seed(1, "s", 25, "kill", 0)
        b = derive_seed(1, "s", 25, "kill", 1)
        c = derive_seed(1, "s", 100, "kill", 0)
        assert len({a, b, c}) == 3
        # No argument anywhere encodes worker count or order: the same
        # coordinates always map to the same seed.
        assert a == derive_seed(1, "s", 25, "kill", 0)

    def test_seed_fits_in_63_bits(self):
        for rep in range(50):
            seed = derive_seed(7, "x", rep)
            assert 0 <= seed < 2**63


class TestCell:
    def test_make_sorts_params(self):
        cell = Cell.make("m", "f", zebra=1, alpha=2)
        assert cell.params == (("alpha", 2), ("zebra", 1))
        assert cell.kwargs == {"alpha": 2, "zebra": 1}

    def test_execute_by_module_path(self):
        cell = Cell.make("tests.test_runner", "probe_cell", seed=4, scale=2.0)
        assert execute_cell(cell) == {"seed": 4, "value": 8.0}


class TestRunCells:
    def cells(self, n=4):
        return [
            Cell.make("tests.test_runner", "probe_cell", seed=i) for i in range(n)
        ]

    def test_serial_order_preserved(self):
        results = run_cells(self.cells(), workers=1)
        assert [r["seed"] for r in results] == [0, 1, 2, 3]

    def test_parallel_identical_to_serial(self):
        serial = run_cells(self.cells(6), workers=1)
        parallel = run_cells(self.cells(6), workers=3)
        assert serial == parallel

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            run_cells(self.cells(), workers=0)

    def test_empty_cells(self):
        assert run_cells([], workers=4) == []

    def test_single_cell_skips_pool(self):
        assert run_cells(self.cells(1), workers=8)[0]["seed"] == 0

    def test_worker_exception_propagates(self):
        bad = [Cell.make("tests.test_runner", "failing_cell", seed=1)]
        with pytest.raises(ValueError, match="exploded"):
            run_cells(bad, workers=1)
        with pytest.raises(ValueError, match="exploded"):
            run_cells(bad + self.cells(2), workers=2)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
