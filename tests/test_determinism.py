"""Golden-trace determinism: same seed => identical runs.

Every experiment cell in this repository must be a pure function of
its arguments: two executions with the same seed produce the same
:class:`~repro.sim.trace.TraceLog` digest and the same metric values,
in the same process, across processes, and regardless of how many
workers the grid is sharded over.  These tests are the contract the
parallel runner's bit-identity guarantee rests on.
"""

import pytest

from repro.experiments.faults_study import _run_once as faults_cell
from repro.experiments.harness import TwoJobHarness
from repro.experiments.scale_study import _run_once as scale_cell
from repro.experiments.scale_study import run_scale_study
from tests.conftest import quick_cluster
from repro.workloads.jobspec import JobSpec, TaskSpec
from repro.units import MB


def tracing_run(seed: int):
    """A small traced cluster run used for digest comparisons.

    Jitter is on so the run actually consumes seeded randomness --
    with zero jitter every seed would (correctly) trace identically.
    """
    cluster = quick_cluster(num_nodes=2, seed=seed, task_time_jitter=0.05)
    cluster.submit_job(
        JobSpec(
            name="d",
            tasks=[
                TaskSpec(input_bytes=35 * MB, parse_rate=7 * MB, name=f"t{i}")
                for i in range(3)
            ],
        )
    )
    cluster.run_until_jobs_complete(timeout=3600.0)
    return cluster


class TestTraceDigest:
    def test_same_seed_same_digest(self):
        a = tracing_run(11)
        b = tracing_run(11)
        assert len(a.sim.trace_log) > 50
        assert a.sim.trace_log.digest() == b.sim.trace_log.digest()

    def test_different_seed_different_digest(self):
        assert (
            tracing_run(11).sim.trace_log.digest()
            != tracing_run(12).sim.trace_log.digest()
        )

    def test_digest_sees_field_values(self):
        a = tracing_run(11).sim.trace_log
        digest_before = a.digest()
        a.record(0.0, "extra", detail=1)
        assert a.digest() != digest_before


class TestFig2Determinism:
    def test_harness_cell_repeatable(self):
        first = TwoJobHarness("suspend", 0.5, runs=1, keep_traces=True).run_once(77)
        second = TwoJobHarness("suspend", 0.5, runs=1, keep_traces=True).run_once(77)
        assert first.sojourn_th == second.sojourn_th
        assert first.makespan == second.makespan
        assert first.tl_paged_bytes == second.tl_paged_bytes
        assert (
            first.trace_cluster.sim.trace_log.digest()
            == second.trace_cluster.sim.trace_log.digest()
        )

    def test_serial_equals_parallel(self):
        serial = TwoJobHarness("kill", 0.4, runs=2, workers=1).run()
        parallel = TwoJobHarness("kill", 0.4, runs=2, workers=2).run()
        assert [r.sojourn_th for r in serial.runs] == [
            r.sojourn_th for r in parallel.runs
        ]
        assert serial.makespan.mean == parallel.makespan.mean
        assert serial.tl_paged_bytes.mean == parallel.tl_paged_bytes.mean

    @pytest.mark.integration
    def test_flat_grid_equals_per_primitive_sweeps(self):
        # fig2's one-pool grid path must reproduce the serial sweeps.
        from repro.experiments.harness import sweep_grid, sweep_progress

        points = [0.3, 0.7]
        flat = sweep_grid(
            ["wait", "kill"], progress_points=points, runs=2, workers=2
        )
        for primitive in ("wait", "kill"):
            serial = sweep_progress(
                primitive, progress_points=points, runs=2
            )
            for r in points:
                assert flat[primitive][r].sojourn_th.mean == (
                    serial[r].sojourn_th.mean
                )
                assert flat[primitive][r].makespan.mean == (
                    serial[r].makespan.mean
                )


class TestFaultsDeterminism:
    def test_cell_repeatable(self):
        first = faults_cell("node-crash", "kill", 4242)
        second = faults_cell("node-crash", "kill", 4242)
        assert first == second

    @pytest.mark.integration
    def test_serial_equals_parallel(self):
        from repro.experiments.faults_study import run_faults_study

        kwargs = dict(runs=1, scenarios=["transient-failure"],
                      primitives=["kill", "suspend"])
        serial = run_faults_study(workers=1, **kwargs)
        parallel = run_faults_study(workers=2, **kwargs)
        assert serial.extras["metrics"] == parallel.extras["metrics"]
        assert serial.render() == parallel.render()


class TestScaleDeterminism:
    CELL = dict(scenario="baseline", primitive_name="kill",
                trackers=5, num_jobs=6, seed=31337)

    def test_cell_repeatable(self):
        assert scale_cell(**self.CELL) == scale_cell(**self.CELL)

    def test_gated_cell_repeatable(self):
        # The admission gate must not introduce nondeterminism.
        from repro.preemption.admission import AdmissionConfig

        cell = dict(self.CELL, primitive_name="suspend",
                    admission=AdmissionConfig(reserve_bytes=256 * MB))
        assert scale_cell(**cell) == scale_cell(**cell)

    @pytest.mark.integration
    def test_serial_equals_parallel_byte_identical(self):
        kwargs = dict(
            runs=1,
            cluster_sizes=[5],
            scenarios=["baseline", "burst"],
            primitives=["wait", "suspend"],
            num_jobs=6,
        )
        serial = run_scale_study(workers=1, **kwargs)
        parallel = run_scale_study(workers=2, **kwargs)
        assert serial.extras["digest"] == parallel.extras["digest"]
        assert serial.render().encode() == parallel.render().encode()


class TestScale2000GoldenTrace:
    """The batched-dispatch acceptance cell (2000 trackers, steady
    mix, phase-locked heartbeats, batching on) obeys the same golden-
    trace contract as every small cell: repeatable digests, byte-
    identical sharding over 4 workers, and checkpoint/resume replay
    identity -- at the scale where the batch contexts actually carry
    thousand-heartbeat folds."""

    @staticmethod
    def _cell_kwargs(seed_salt):
        from repro.experiments.runner import derive_seed

        return dict(
            scenario="steady", primitive_name="suspend", trackers=2000,
            num_jobs=30,
            seed=derive_seed(9000, "scale", "steady", 2000, "suspend",
                             seed_salt),
            trace=True, heartbeat_phases=4, batch_heartbeats=True,
        )

    @pytest.mark.slow
    def test_serial_equals_workers4_byte_identical(self):
        from repro.experiments.runner import Cell, run_cells

        cells = [
            Cell.make("repro.experiments.scale_study", "_run_once",
                      **self._cell_kwargs(salt))
            for salt in range(4)
        ]
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=4)
        assert serial == parallel
        digests = [r["trace_digest"] for r in serial]
        # Distinct seeds genuinely consumed randomness: all differ.
        assert len(set(digests)) == len(digests)

    @pytest.mark.slow
    def test_checkpoint_resume_identity(self, tmp_path):
        from repro.checkpoint.core import load, restore
        from repro.experiments import scale_study

        kwargs = self._cell_kwargs(0)
        cluster, _ = scale_study._build_run(
            kwargs["scenario"], kwargs["primitive_name"],
            kwargs["trackers"], kwargs["num_jobs"], kwargs["seed"],
            trace=True, heartbeat_phases=kwargs["heartbeat_phases"],
            batch_heartbeats=kwargs["batch_heartbeats"],
        )
        meta = {
            "kind": "scale", "scenario": kwargs["scenario"],
            "primitive_name": kwargs["primitive_name"],
            "trackers": kwargs["trackers"], "num_jobs": kwargs["num_jobs"],
            "seed": kwargs["seed"], "trace": True,
        }
        path = str(tmp_path / "scale2000.ck")
        cluster.sim.snapshot_at(120.0, path, root=cluster, meta=meta)
        unbroken = scale_study._finish_run(cluster, meta)
        checkpoint = load(path)
        resumed = scale_study._finish_run(
            restore(checkpoint), dict(checkpoint.meta)
        )
        assert resumed == unbroken


class TestMemscaleDeterminism:
    """The memscale grid shards byte-identically like scale/shuffle."""

    CELL = dict(mode="suspend-gated", trackers=6, num_jobs=8, seed=41001)

    def test_cell_repeatable(self):
        from repro.experiments.memscale_study import _run_once as memscale_cell

        assert memscale_cell(**self.CELL) == memscale_cell(**self.CELL)

    @pytest.mark.integration
    def test_serial_equals_parallel_byte_identical(self):
        from repro.experiments.memscale_study import run_memscale_study

        kwargs = dict(
            runs=1,
            cluster_sizes=[6],
            modes=["kill", "suspend-gated", "suspend-ungated"],
            num_jobs=8,
        )
        serial = run_memscale_study(workers=1, **kwargs)
        parallel = run_memscale_study(workers=4, **kwargs)
        assert serial.extras["digest"] == parallel.extras["digest"]
        assert serial.render().encode() == parallel.render().encode()
