"""Ablation experiments: swappiness, GC policy, advisor-driven mixes."""

import pytest

from repro.experiments.gc_study import run_gc_study
from repro.experiments.swappiness_study import run_swappiness_study
from repro.hadoop.jvm import GcPolicy

pytestmark = [pytest.mark.integration, pytest.mark.slow]


class TestSwappinessAblation:
    def test_zero_swappiness_minimises_paging(self):
        report = run_swappiness_study(runs=2, swappiness_values=[0, 90])
        paged = report.extras["paged_mb"]
        assert paged[0] < paged[1]
        # At swappiness 0 the cache absorbs most of the pressure.
        assert paged[0] < 200

    def test_monotone_in_the_knob(self):
        report = run_swappiness_study(runs=1, swappiness_values=[0, 45, 90])
        paged = report.extras["paged_mb"]
        assert paged[0] <= paged[1] <= paged[2]


class TestGcAblation:
    def test_release_beats_hoard(self):
        report = run_gc_study(runs=2, heap_slack=0.25)
        paged = report.extras["paged_mb"]
        makespans = report.extras["makespans"]
        assert paged["release"] < paged["hoard"]
        assert makespans["release"] < makespans["hoard"]

    def test_zero_slack_equalises(self):
        report = run_gc_study(runs=1, heap_slack=0.0)
        paged = report.extras["paged_mb"]
        assert paged["release"] == pytest.approx(paged["hoard"], rel=0.05)


class TestGcPolicyPlumbing:
    def test_harness_gc_policy_reaches_cluster(self):
        from repro.experiments.harness import TwoJobHarness
        from repro.experiments.params import paper_hadoop_config

        harness = TwoJobHarness(
            "suspend",
            0.5,
            heavy=True,
            runs=1,
            hadoop_config=paper_hadoop_config().replace(jvm_heap_slack=0.5),
        )
        harness.gc_policy = GcPolicy.HOARD
        hoarding = harness.run_once(seed=1)
        harness.gc_policy = GcPolicy.RELEASE
        releasing = harness.run_once(seed=1)
        assert hoarding.tl_paged_bytes > releasing.tl_paged_bytes
