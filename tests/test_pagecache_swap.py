"""Page cache and swap area accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SwapExhaustedError
from repro.osmodel.pagecache import PageCache
from repro.osmodel.swap import SwapArea
from repro.units import MB


class TestPageCache:
    def test_insert_limited_by_room(self):
        cache = PageCache()
        cached = cache.insert(10 * MB, room=4 * MB)
        assert cached == 4 * MB
        assert cache.size == 4 * MB

    def test_insert_no_room(self):
        cache = PageCache()
        assert cache.insert(10 * MB, room=0) == 0

    def test_shrink_respects_floor(self):
        cache = PageCache(min_bytes=2 * MB)
        cache.insert(10 * MB, room=10 * MB)
        freed = cache.shrink(100 * MB)
        assert freed == 8 * MB
        assert cache.size == 2 * MB
        assert cache.evictable == 0

    def test_shrink_partial(self):
        cache = PageCache()
        cache.insert(10 * MB, room=10 * MB)
        assert cache.shrink(3 * MB) == 3 * MB
        assert cache.size == 7 * MB

    def test_counters(self):
        cache = PageCache()
        cache.insert(5 * MB, room=5 * MB)
        cache.shrink(2 * MB)
        assert cache.total_inserted == 5 * MB
        assert cache.total_evicted == 2 * MB

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=32 * MB)),
                    max_size=30))
    def test_never_negative_never_below_floor_after_shrink(self, ops):
        cache = PageCache(min_bytes=1 * MB)
        for grow, size in ops:
            if grow:
                cache.insert(size, room=size)
            else:
                cache.shrink(size)
            cache.check_invariants()
            assert cache.size >= 0


class TestSwapArea:
    def test_page_out_and_in(self):
        swap = SwapArea(capacity=100 * MB)
        swap.page_out(1, 10 * MB)
        swap.page_out(2, 5 * MB)
        assert swap.used == 15 * MB
        assert swap.swapped_bytes(1) == 10 * MB
        swap.page_in(1, 4 * MB)
        assert swap.swapped_bytes(1) == 6 * MB
        assert swap.used == 11 * MB

    def test_lifetime_accounting(self):
        swap = SwapArea(capacity=100 * MB)
        swap.page_out(1, 10 * MB)
        swap.page_in(1, 10 * MB)
        swap.page_out(1, 3 * MB)
        assert swap.lifetime_swapped_bytes(1) == 13 * MB
        assert swap.swapped_bytes(1) == 3 * MB

    def test_exhaustion_raises(self):
        swap = SwapArea(capacity=8 * MB)
        with pytest.raises(SwapExhaustedError):
            swap.page_out(1, 9 * MB)

    def test_page_in_more_than_held_raises(self):
        swap = SwapArea(capacity=100 * MB)
        swap.page_out(1, 2 * MB)
        with pytest.raises(SwapExhaustedError):
            swap.page_in(1, 3 * MB)

    def test_release_frees_everything(self):
        swap = SwapArea(capacity=100 * MB)
        swap.page_out(1, 10 * MB)
        swap.page_out(2, 20 * MB)
        freed = swap.release(1)
        assert freed == 10 * MB
        assert swap.used == 20 * MB
        assert swap.swapped_bytes(1) == 0

    def test_zero_ops_noop(self):
        swap = SwapArea(capacity=10 * MB)
        swap.page_out(1, 0)
        swap.page_in(1, 0)
        assert swap.used == 0

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                              st.integers(min_value=0, max_value=8 * MB)),
                    max_size=30))
    def test_per_process_sums_to_used(self, outs):
        swap = SwapArea(capacity=1024 * MB)
        for pid, size in outs:
            swap.page_out(pid, size)
            swap.check_invariants()
        assert sum(swap.per_process.values()) == swap.used
