"""The work engine: plans, exact suspension, progress watchers."""

import pytest

from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.process import ExitReason
from repro.osmodel.signals import Signal
from repro.osmodel.work import (
    CpuWorkItem,
    DiskWriteItem,
    MemAllocItem,
    MemTouchItem,
    SleepItem,
    WorkEngine,
    WorkPlan,
)
from repro.sim.engine import Simulation
from repro.units import GB, MB


def build(plan_items, **node_overrides):
    defaults = dict(
        ram_bytes=1 * GB,
        os_reserved_bytes=0,
        swap_bytes=2 * GB,
        page_cache_min_bytes=0,
        mem_touch_bw=1000 * MB,
        mem_read_bw=1000 * MB,
        direct_reclaim_fraction=1.0,
        fault_in_sync_fraction=1.0,
        hostname="worktest",
    )
    defaults.update(node_overrides)
    kernel = NodeKernel(Simulation(seed=5), NodeConfig(**defaults))
    proc = kernel.spawn("task")
    engine = WorkEngine(proc, WorkPlan(plan_items))
    return kernel, proc, engine


class TestPlanExecution:
    def test_sequential_items(self):
        kernel, proc, engine = build([SleepItem(2.0), SleepItem(3.0)])
        done = []
        proc.on_exit(lambda p, r: done.append((kernel.sim.now, r)))
        engine.start()
        kernel.sim.run()
        assert done == [(pytest.approx(5.0), ExitReason.EXITED)]
        assert engine.completed

    def test_cpu_item_timing(self):
        kernel, proc, engine = build(
            [CpuWorkItem.for_bytes(70 * MB, parse_rate=7 * MB, weight=1.0)]
        )
        done = []
        proc.on_exit(lambda p, r: done.append(kernel.sim.now))
        engine.start()
        kernel.sim.run()
        assert done == [pytest.approx(10.0)]

    def test_mem_alloc_item_accounts_memory_and_time(self):
        kernel, proc, engine = build([MemAllocItem(500 * MB)])
        engine.start()
        kernel.sim.run()
        assert proc.image.virtual == 0  # process exited, memory reaped
        # Duration was alloc bytes / touch bandwidth = 0.5 s.
        assert kernel.sim.now == pytest.approx(0.5)

    def test_disk_write_item(self):
        kernel, proc, engine = build([DiskWriteItem(90 * MB)])
        engine.start()
        kernel.sim.run()
        assert kernel.sim.now == pytest.approx(1.0)  # default 90 MB/s write

    def test_empty_plan_completes_immediately(self):
        kernel, proc, engine = build([])
        engine.start()
        kernel.sim.run()
        assert engine.completed
        assert engine.progress() == 1.0

    def test_zero_cpu_item(self):
        kernel, proc, engine = build([CpuWorkItem(0.0, weight=1.0)])
        engine.start()
        kernel.sim.run()
        assert engine.completed


class TestProgress:
    def test_weighted_progress(self):
        kernel, proc, engine = build(
            [
                SleepItem(1.0, weight=0.0),
                CpuWorkItem(10.0, weight=1.0),
            ]
        )
        engine.start()
        kernel.sim.run(until=1.0)
        assert engine.progress() == pytest.approx(0.0)
        kernel.sim.run(until=6.0)  # halfway through the CPU item
        assert engine.progress() == pytest.approx(0.5)

    def test_watcher_exact_crossing(self):
        kernel, proc, engine = build(
            [SleepItem(2.0, weight=0.0), CpuWorkItem(10.0, weight=1.0)]
        )
        hits = []
        engine.start()
        engine.when_progress(0.3, lambda: hits.append(kernel.sim.now))
        kernel.sim.run()
        assert hits == [pytest.approx(5.0)]  # 2 s sleep + 3 s of cpu

    def test_watcher_registered_before_item_starts(self):
        kernel, proc, engine = build(
            [SleepItem(4.0, weight=0.5), SleepItem(4.0, weight=0.5)]
        )
        hits = []
        engine.start()
        engine.when_progress(0.75, lambda: hits.append(kernel.sim.now))
        kernel.sim.run()
        assert hits == [pytest.approx(6.0)]

    def test_watcher_past_fraction_fires_immediately(self):
        kernel, proc, engine = build([SleepItem(2.0, weight=1.0)])
        hits = []
        engine.start()
        kernel.sim.run(until=1.5)
        engine.when_progress(0.5, lambda: hits.append(kernel.sim.now))
        kernel.sim.run()
        assert hits and hits[0] == pytest.approx(1.5)

    def test_watcher_fires_at_completion_at_latest(self):
        kernel, proc, engine = build([SleepItem(1.0, weight=0.0)])
        hits = []
        engine.start()
        engine.when_progress(1.0, lambda: hits.append(kernel.sim.now))
        kernel.sim.run()
        assert hits == [pytest.approx(1.0)]


class TestSuspension:
    def test_pause_preserves_exact_remaining(self):
        kernel, proc, engine = build([CpuWorkItem(10.0, weight=1.0)])
        done = []
        proc.on_exit(lambda p, r: done.append(kernel.sim.now))
        engine.start()
        kernel.sim.schedule(4.0, kernel.signal, proc.pid, Signal.SIGSTOP)
        kernel.sim.schedule(9.0, kernel.signal, proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        # 4 s of work, 5 s stopped, 6 s of work left -> done at 15.
        assert done == [pytest.approx(15.0)]

    def test_suspend_during_sleep_item(self):
        kernel, proc, engine = build([SleepItem(10.0)])
        done = []
        proc.on_exit(lambda p, r: done.append(kernel.sim.now))
        engine.start()
        kernel.sim.schedule(3.0, kernel.signal, proc.pid, Signal.SIGSTOP)
        kernel.sim.schedule(5.0, kernel.signal, proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        assert done == [pytest.approx(12.0)]

    def test_progress_frozen_while_stopped(self):
        kernel, proc, engine = build([CpuWorkItem(10.0, weight=1.0)])
        engine.start()
        kernel.sim.schedule(4.0, kernel.signal, proc.pid, Signal.SIGSTOP)
        kernel.sim.run(until=8.0)
        assert engine.progress() == pytest.approx(0.4)

    def test_resume_charges_fault_in(self):
        # Victim loses pages while stopped; resume pays page-in time.
        kernel, proc, engine = build(
            [MemAllocItem(600 * MB), CpuWorkItem(10.0, weight=1.0)]
        )
        done = []
        proc.on_exit(lambda p, r: done.append(kernel.sim.now))
        engine.start()
        kernel.sim.run(until=2.0)  # alloc done (0.6 s), cpu running
        kernel.signal(proc.pid, Signal.SIGSTOP)
        hog = kernel.spawn("hog")
        kernel.charge_allocation(hog, 700 * MB)  # forces victim pages out
        assert proc.image.swapped > 0
        kernel.signal(hog.pid, Signal.SIGKILL)
        kernel.signal(proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        assert engine.fault_in_seconds > 0
        assert proc.image.swapped == 0
        assert done  # completed despite the round trip

    def test_abort_preserves_partial_progress(self):
        kernel, proc, engine = build([CpuWorkItem(10.0, weight=1.0)])
        engine.start()
        kernel.sim.run(until=4.0)
        kernel.signal(proc.pid, Signal.SIGKILL)
        assert engine.progress() == pytest.approx(0.4)
        kernel.sim.run()
        assert engine.progress() == pytest.approx(0.4)  # frozen forever

    def test_double_pause_resume_cycles(self):
        kernel, proc, engine = build([CpuWorkItem(12.0, weight=1.0)])
        done = []
        proc.on_exit(lambda p, r: done.append(kernel.sim.now))
        engine.start()
        for stop_at, cont_at in ((2.0, 4.0), (6.0, 9.0)):
            kernel.sim.schedule(stop_at, kernel.signal, proc.pid, Signal.SIGSTOP)
            kernel.sim.schedule(cont_at, kernel.signal, proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        # 12 s of work + 2 s + 3 s stopped = 17 s.
        assert done == [pytest.approx(17.0)]


class TestMemTouch:
    def test_touch_reads_resident(self):
        kernel, proc, engine = build(
            [MemAllocItem(500 * MB), MemTouchItem()]
        )
        engine.start()
        kernel.sim.run()
        # 0.5 s alloc + 0.5 s read-back (1000 MB/s both ways).
        assert kernel.sim.now == pytest.approx(1.0)

    def test_touch_faults_in_swapped(self):
        kernel, proc, engine = build(
            [MemAllocItem(600 * MB), SleepItem(5.0), MemTouchItem()]
        )
        engine.start()
        kernel.sim.run(until=2.0)
        kernel.signal(proc.pid, Signal.SIGSTOP)
        hog = kernel.spawn("hog")
        kernel.charge_allocation(hog, 700 * MB)
        swapped = proc.image.swapped
        assert swapped > 0
        kernel.signal(hog.pid, Signal.SIGKILL)
        kernel.signal(proc.pid, Signal.SIGCONT)
        kernel.sim.run()
        assert proc.image.swapped == 0
        assert engine.completed
