"""Real-process prototype: genuine POSIX signals on live workers.

These tests spawn actual subprocesses.  They are quick (inputs of a
few MB) but inherently wall-clock dependent, so assertions are
generous; they verify *mechanism* (the stop really lands, state 'T'
appears in /proc, work resumes where it left off), not timing
precision.
"""

import os
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.posixrt.cgroups import CgroupResult, detect_version, limit_memory
from repro.posixrt.controller import (
    WorkerHandle,
    WorkerSpec,
    sigtstp_stops_supported,
)
from repro.posixrt.procfs import process_exists, read_proc_status, read_stat_state
from repro.posixrt.runner import MiniExperiment
from repro.units import MB

pytestmark = [pytest.mark.posix, pytest.mark.integration]

needs_linux = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="requires Linux /proc and signals"
)


@pytest.fixture
def job_control():
    """Skip when SIGTSTP stops cannot be delivered or observed.

    A fixture rather than a skipif mark so the (subprocess-spawning,
    up-to-5s) probe only runs when a suspend test is actually selected
    -- `-m "not posix"` collections never pay for it.
    """
    if not sys.platform.startswith("linux") or not sigtstp_stops_supported():
        pytest.skip("platform cannot deliver/observe SIGTSTP job-control stops")


needs_job_control = pytest.mark.usefixtures("job_control")


def quick_spec(name="w", input_mb=4, rate=16.0, memory_mb=0):
    return WorkerSpec(
        input_bytes=input_mb * MB,
        chunk_bytes=256 * 1024,
        memory_bytes=memory_mb * MB,
        rate_bytes_per_sec=rate * MB,
        name=name,
    )


@needs_linux
class TestWorkerLifecycle:
    def test_worker_runs_to_completion(self):
        with WorkerHandle(quick_spec()) as worker:
            assert worker.wait_done(timeout=30)
            assert worker.progress() == 1.0
            records = {r.kind for r in worker.read_status()}
            assert {"PID", "START", "PROGRESS", "PARSED", "DONE"} <= records

    def test_progress_is_monotonic(self):
        with WorkerHandle(quick_spec()) as worker:
            seen = []
            while not worker.exited():
                seen.append(worker.progress())
                time.sleep(0.05)
            seen.append(worker.progress())
            assert seen == sorted(seen)

    def test_kill_terminates(self):
        with WorkerHandle(quick_spec(input_mb=64, rate=4.0)) as worker:
            assert worker.wait_progress(0.05, timeout=30)
            worker.kill()
            worker.proc.wait(timeout=10)
            assert worker.exited()
            assert not worker.done()

    def test_memory_allocation_visible_in_proc(self):
        with WorkerHandle(quick_spec(input_mb=16, rate=8.0, memory_mb=64)) as worker:
            assert worker.wait_progress(0.1, timeout=30)
            status = worker.proc_status()
            assert status is not None
            assert status.vm_rss_bytes > 64 * MB * 0.8
            worker.kill()


@needs_job_control
class TestSuspendResume:
    def test_sigtstp_stops_process(self):
        with WorkerHandle(quick_spec(input_mb=64, rate=4.0)) as worker:
            assert worker.wait_progress(0.05, timeout=30)
            worker.suspend()
            assert worker.wait_stopped(timeout=10)
            status = worker.proc_status()
            assert status.stopped
            kinds = [r.kind for r in worker.read_status()]
            assert "SUSPENDING" in kinds  # the handler ran first
            worker.kill()

    def test_progress_frozen_while_stopped(self):
        with WorkerHandle(quick_spec(input_mb=64, rate=8.0)) as worker:
            assert worker.wait_progress(0.05, timeout=30)
            worker.suspend()
            assert worker.wait_stopped(timeout=10)
            p1 = worker.progress()
            time.sleep(0.4)
            p2 = worker.progress()
            assert p2 == p1
            worker.kill()

    def test_resume_continues_to_completion(self):
        with WorkerHandle(quick_spec(input_mb=4, rate=8.0)) as worker:
            assert worker.wait_progress(0.3, timeout=30)
            worker.suspend()
            assert worker.wait_stopped(timeout=10)
            progress_at_stop = worker.progress()
            worker.resume()
            assert worker.wait_done(timeout=60)
            kinds = [r.kind for r in worker.read_status()]
            assert "RESUMED" in kinds
            assert worker.progress() == 1.0
            assert progress_at_stop >= 0.25  # work before the stop was kept

    def test_suspended_spans_recorded(self):
        with WorkerHandle(quick_spec(input_mb=4, rate=8.0)) as worker:
            assert worker.wait_progress(0.2, timeout=30)
            worker.suspend()
            worker.wait_stopped(timeout=10)
            time.sleep(0.2)
            worker.resume()
            worker.wait_done(timeout=60)
            assert len(worker.suspended_spans) == 1
            start, end = worker.suspended_spans[0]
            assert end - start >= 0.2


@needs_linux
class TestProcfs:
    def test_read_own_status(self):
        status = read_proc_status(os.getpid())
        assert status is not None
        assert status.alive
        assert status.vm_rss_bytes > 0

    def test_missing_pid(self):
        assert read_proc_status(2 ** 22 + 12345) is None

    def test_process_exists(self):
        assert process_exists(os.getpid())
        assert not process_exists(2 ** 22 + 12345)

    def test_read_stat_state(self):
        # This process is running (R) or, under some test runners,
        # briefly sleeping (S); never stopped.
        state = read_stat_state(os.getpid())
        assert state in ("R", "S", "D")
        assert read_stat_state(2 ** 22 + 12345) is None


@needs_linux
class TestMiniExperiment:
    @needs_job_control
    def test_compare_orders_primitives(self):
        experiment = MiniExperiment(
            input_mb=3, rate_mb_per_sec=12.0, progress_at_launch=0.5
        )
        rows = experiment.compare(("wait", "kill", "suspend"))
        wait, kill, susp = rows["wait"], rows["kill"], rows["suspend"]
        assert rows["suspend"].tl_was_stopped
        assert rows["kill"].tl_restarted
        # The paper's qualitative claims, with generous margins for
        # wall-clock noise:
        assert susp.sojourn_th < wait.sojourn_th
        assert kill.makespan > susp.makespan
        assert susp.makespan < wait.makespan * 1.4

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniExperiment(progress_at_launch=1.5)
        with pytest.raises(ConfigurationError):
            MiniExperiment(input_mb=0)
        with pytest.raises(ConfigurationError):
            MiniExperiment().run_primitive("teleport")


class TestCgroups:
    def test_detect_version_returns_known_value(self):
        assert detect_version() in (None, 1, 2)

    def test_limit_memory_graceful(self):
        # In unprivileged containers this must not raise; either it
        # applies or reports why not.
        result = limit_memory(os.getpid(), 512 * MB, group_name="repro-test")
        assert isinstance(result, CgroupResult)
        if not result.applied:
            assert result.reason
