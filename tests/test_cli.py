"""Command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig2", "fig3", "fig4", "natjam"):
            assert name in out


class TestWorkers:
    def test_negative_workers_rejected(self, capsys):
        assert main(["run", "fig1", "--workers", "-1"]) == 1
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_serial_experiment_warns_on_workers(self, capsys):
        # fig1 takes no workers kwarg; the flag is ignored with a note.
        assert main(["run", "fig1", "--workers", "2", "--no-plots"]) == 0
        assert "ignoring --workers" in capsys.readouterr().err


class TestSchedule:
    def test_schedule_suspend(self, capsys):
        assert main(["schedule", "--primitive", "suspend", "--progress", "50"]) == 0
        out = capsys.readouterr().out
        assert "sojourn" in out
        assert "=" in out  # the Gantt bars

    def test_schedule_kill(self, capsys):
        assert main(["schedule", "--primitive", "kill"]) == 0
        assert "makespan" in capsys.readouterr().out


class TestReproduce:
    def test_requires_figures(self, capsys):
        assert main(["reproduce"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_quick_fig1(self, capsys):
        assert main(["reproduce", "--figure", "fig1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "task execution schedules" in out

    @pytest.mark.slow
    def test_quick_fig2_with_csv(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            [
                "reproduce",
                "--figure",
                "fig2",
                "--quick",
                "--no-plots",
                "--out",
                out_dir,
            ]
        )
        assert code == 0
        files = os.listdir(out_dir)
        assert any(name.endswith(".csv") for name in files)
        out = capsys.readouterr().out
        assert "baseline-sojourn" in out

    @pytest.mark.slow
    def test_runs_override(self, capsys):
        code = main(
            ["reproduce", "--figure", "natjam", "--quick", "--runs", "1",
             "--no-plots"]
        )
        assert code == 0
        assert "natjam" in capsys.readouterr().out
