"""Command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig2", "fig3", "fig4", "natjam", "shuffle",
                     "memscale"):
            assert name in out

    def test_list_prints_descriptions(self, capsys):
        from repro.experiments.registry import DESCRIPTIONS, list_experiments

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Every registered experiment carries its one-line description:
        # a registry entry without one is a test failure here, never a
        # silent omission in `repro list`.
        assert set(DESCRIPTIONS) == set(list_experiments())
        for name in list_experiments():
            description = DESCRIPTIONS[name]
            assert description and description.strip(), (
                f"experiment {name!r} has an empty description"
            )
            assert description in out

    def test_every_alias_resolves_to_a_registered_experiment(self):
        from repro.experiments.registry import (
            ALIASES,
            EXPERIMENTS,
            describe_experiment,
            resolve_name,
        )

        for alias, target in ALIASES.items():
            assert target in EXPERIMENTS, (
                f"alias {alias!r} points at unregistered {target!r}"
            )
            assert resolve_name(alias) == target
            # Descriptions are reachable through aliases too.
            assert describe_experiment(alias)

    def test_memscale_registered_with_aliases(self):
        from repro.experiments.registry import get_experiment

        assert get_experiment("memscale") is get_experiment("e11")
        assert get_experiment("memory") is get_experiment("memscale_study")


class TestWorkers:
    def test_negative_workers_rejected(self, capsys):
        assert main(["run", "fig1", "--workers", "-1"]) == 1
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_serial_experiment_warns_on_workers(self, capsys):
        # fig1 takes no workers kwarg; the flag is ignored with a note.
        assert main(["run", "fig1", "--workers", "2", "--no-plots"]) == 0
        assert "ignoring --workers" in capsys.readouterr().err


class TestSchedule:
    def test_schedule_suspend(self, capsys):
        assert main(["schedule", "--primitive", "suspend", "--progress", "50"]) == 0
        out = capsys.readouterr().out
        assert "sojourn" in out
        assert "=" in out  # the Gantt bars

    def test_schedule_kill(self, capsys):
        assert main(["schedule", "--primitive", "kill"]) == 0
        assert "makespan" in capsys.readouterr().out


class TestReproduce:
    def test_requires_figures(self, capsys):
        assert main(["reproduce"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_quick_fig1(self, capsys):
        assert main(["reproduce", "--figure", "fig1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "task execution schedules" in out

    @pytest.mark.slow
    def test_quick_fig2_with_csv(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            [
                "reproduce",
                "--figure",
                "fig2",
                "--quick",
                "--no-plots",
                "--out",
                out_dir,
            ]
        )
        assert code == 0
        files = os.listdir(out_dir)
        assert any(name.endswith(".csv") for name in files)
        out = capsys.readouterr().out
        assert "baseline-sojourn" in out

    @pytest.mark.slow
    def test_runs_override(self, capsys):
        code = main(
            ["reproduce", "--figure", "natjam", "--quick", "--runs", "1",
             "--no-plots"]
        )
        assert code == 0
        assert "natjam" in capsys.readouterr().out


class TestProfile:
    def test_profile_quick_fig1(self, capsys):
        assert main(["profile", "fig1", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats table header
        assert "function calls" in out

    def test_profile_dump_to_file(self, tmp_path, capsys):
        out_path = os.path.join(tmp_path, "prof.pstats")
        assert main(
            ["profile", "fig1", "--sort", "tottime", "--out", out_path]
        ) == 0
        assert os.path.exists(out_path)
        assert f"wrote {out_path}" in capsys.readouterr().out

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestBenchGuard:
    """tools/bench_guard.py: artifact shape and regression detection."""

    def _load_guard(self):
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "tools" / "bench_guard.py"
        spec = importlib.util.spec_from_file_location("bench_guard", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_run_and_self_check_passes(self, tmp_path):
        guard = self._load_guard()
        out = os.path.join(tmp_path, "bench.json")
        assert guard.main(["--out", out, "--scale", "0.08"]) == 0
        import json

        with open(out) as handle:
            payload = json.load(handle)
        assert set(payload["benches"]) == set(guard.BENCHES)
        for counters in payload["benches"].values():
            assert counters["wall_s"] >= 0
        # Same machine, same scale: the guard must accept its own run.
        out2 = os.path.join(tmp_path, "bench2.json")
        assert guard.main(
            ["--out", out2, "--scale", "0.08", "--check", out]
        ) == 0

    def test_counter_regression_fails(self, tmp_path):
        guard = self._load_guard()
        current = {"cell": {"wall_s": 1.0, "events": 130, "engine_ops": 10}}
        baseline = {"cell": {"wall_s": 1.0, "events": 100, "engine_ops": 10}}
        problems, warnings = guard.check(current, baseline)
        assert problems and "events" in problems[0]
        assert warnings == []

    def test_uniformly_slower_machine_passes_wall(self):
        guard = self._load_guard()
        baseline = {
            "a": {"wall_s": 1.0, "events": 10, "engine_ops": 0},
            "b": {"wall_s": 2.0, "events": 10, "engine_ops": 0},
            "c": {"wall_s": 4.0, "events": 10, "engine_ops": 0},
        }
        current = {
            name: {"wall_s": vals["wall_s"] * 3.0, "events": 10, "engine_ops": 0}
            for name, vals in baseline.items()
        }
        assert guard.check(current, baseline) == ([], [])

    def test_single_bench_wall_regression_warns_only(self):
        # A foreign machine's skewed per-bench speed ratio must never
        # hard-fail the guard: wall outliers are advisory warnings,
        # and only the deterministic counters gate.
        guard = self._load_guard()
        baseline = {
            "a": {"wall_s": 1.0, "events": 10, "engine_ops": 0},
            "b": {"wall_s": 2.0, "events": 10, "engine_ops": 0},
            "c": {"wall_s": 4.0, "events": 10, "engine_ops": 0},
        }
        current = {name: dict(vals) for name, vals in baseline.items()}
        current["c"]["wall_s"] = 20.0
        problems, warnings = guard.check(current, baseline)
        assert problems == []
        assert warnings and "c: wall" in warnings[0]
        assert "advisory" in warnings[0]

    def test_wall_only_regression_exits_zero(self, tmp_path):
        # End to end: a baseline whose walls are wildly off for this
        # host (as checked-in baselines are on foreign machines) still
        # exits 0 when the counters match.
        guard = self._load_guard()
        import json

        out = os.path.join(tmp_path, "bench.json")
        assert guard.main(["--out", out, "--scale", "0.08"]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        skewed = os.path.join(tmp_path, "skewed.json")
        benches = {
            name: dict(vals) for name, vals in payload["benches"].items()
        }
        for i, vals in enumerate(benches.values()):
            # Non-uniform skew: median calibration cannot flatten it.
            vals["wall_s"] = max(vals["wall_s"], guard.WALL_FLOOR_S) * (
                50.0 if i % 2 else 1.0
            )
        with open(skewed, "w") as handle:
            json.dump({"scale": 0.08, "benches": benches}, handle)
        assert guard.main(
            ["--out", os.path.join(tmp_path, "b2.json"), "--scale", "0.08",
             "--check", skewed]
        ) == 0
