"""Edge cases for :mod:`repro.metrics.series` and
:mod:`repro.metrics.timeline`.

The happy paths are exercised by every experiment test; these pin the
boundaries -- empty series, single samples, mismatched curve lengths,
overlapping and unclosed timeline intervals -- where off-by-one
regressions like to hide.
"""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.series import Series
from repro.metrics.stats import percentile
from repro.metrics.timeline import (
    TimelineSegment,
    extract_timeline,
    render_gantt,
)
from repro.sim.trace import TraceLog


class TestSeriesEdges:
    def test_empty_series_rows_and_labels(self):
        series = Series(name="s", x_label="x", y_label="y")
        assert series.rows() == []
        assert series.labels() == []

    def test_curve_length_must_match_axis(self):
        series = Series(name="s", x_label="x", y_label="y",
                        x_values=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            series.add_curve("short", [1.0])

    def test_curve_on_empty_axis_is_allowed(self):
        # No x-axis yet: any length attaches (the axis comes later).
        series = Series(name="s", x_label="x", y_label="y")
        series.add_curve("a", [1.0, 2.0, 3.0])
        assert series.labels() == ["a"]

    def test_point_unknown_label_and_x(self):
        series = Series(name="s", x_label="x", y_label="y", x_values=[1.0])
        series.add_curve("a", [5.0])
        assert series.point("a", 1.0) == 5.0
        with pytest.raises(ConfigurationError):
            series.point("missing", 1.0)
        with pytest.raises(ConfigurationError):
            series.point("a", 9.0)

    def test_crossover_never_and_at_boundary(self):
        series = Series(name="s", x_label="x", y_label="y",
                        x_values=[1.0, 2.0, 3.0])
        series.add_curve("lo", [0.0, 0.0, 0.0])
        series.add_curve("hi", [1.0, 1.0, 1.0])
        assert series.crossover("lo", "hi") is None
        series.add_curve("rising", [-1.0, 0.0, 2.0])
        # Crossing exactly at equality counts (previous < 0 <= sign).
        assert series.crossover("rising", "lo") == 2.0

    def test_single_sample_percentiles(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 95) == 7.0
        assert percentile([7.0], 100) == 7.0


class TestTimelineEdges:
    def test_empty_trace_yields_empty_timeline(self):
        log = TraceLog()
        assert extract_timeline(log) == []
        assert render_gantt([]) == "(empty timeline)"

    def test_unclosed_run_emits_no_segment(self):
        log = TraceLog()
        log.record(1.0, "attempt.launch", attempt="a1")
        # No finish: a half-open interval must not leak a segment.
        assert extract_timeline(log) == []

    def test_suspend_resume_splits_run_segments(self):
        log = TraceLog()
        log.record(0.0, "attempt.launch", attempt="a1")
        log.record(2.0, "os.stopped", name="a1")
        log.record(5.0, "os.resumed", name="a1")
        log.record(9.0, "attempt.finished", attempt="a1")
        segments = extract_timeline(log)
        assert [(s.kind, s.start, s.end) for s in segments] == [
            ("run", 0.0, 2.0),
            ("suspended", 2.0, 5.0),
            ("run", 5.0, 9.0),
        ]

    def test_finish_while_stopped_closes_suspended_segment(self):
        log = TraceLog()
        log.record(0.0, "attempt.launch", attempt="a1")
        log.record(2.0, "os.stopped", name="a1")
        log.record(4.0, "attempt.finished", attempt="a1")
        segments = extract_timeline(log)
        assert [(s.kind, s.end) for s in segments] == [
            ("run", 2.0), ("suspended", 4.0),
        ]

    def test_overlapping_tasks_keep_separate_rows(self):
        log = TraceLog()
        log.record(0.0, "attempt.launch", attempt="a1")
        log.record(1.0, "attempt.launch", attempt="a2")
        log.record(3.0, "attempt.finished", attempt="a2")
        log.record(4.0, "attempt.finished", attempt="a1")
        segments = extract_timeline(log)
        by_task = {s.task: (s.start, s.end) for s in segments}
        assert by_task == {"a1": (0.0, 4.0), "a2": (1.0, 3.0)}
        chart = render_gantt(segments)
        assert chart.count("|") == 4  # two bracketed rows

    def test_zero_duration_segment_renders(self):
        segment = TimelineSegment("t", "run", 1.0, 1.0)
        assert segment.duration == 0.0
        chart = render_gantt([segment])
        assert "=" in chart

    def test_render_scales_to_explicit_t_end(self):
        segments = [TimelineSegment("t", "run", 0.0, 1.0)]
        wide = render_gantt(segments, width=40, t_end=100.0)
        assert "100.0s" in wide
