"""Named RNG streams: determinism and independence."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry


class TestRegistry:
    def test_same_seed_same_sequence(self):
        a = RngRegistry(42).stream("x")
        b = RngRegistry(42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_differs(self):
        a = RngRegistry(1).stream("x")
        b = RngRegistry(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        reg = RngRegistry(42)
        first = [reg.stream("a").random() for _ in range(5)]
        reg2 = RngRegistry(42)
        # Drawing from "b" first must not perturb "a"'s sequence.
        [reg2.stream("b").random() for _ in range(100)]
        second = [reg2.stream("a").random() for _ in range(5)]
        assert first == second

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")
        assert "s" in reg

    def test_seed_is_stable_across_processes(self):
        # sha256 derivation must not depend on PYTHONHASHSEED.
        seed = RngRegistry(123).stream("paging").seed
        assert seed == RngRegistry(123).stream("paging").seed
        assert isinstance(seed, int)


class TestDraws:
    def test_uniform_bounds(self):
        stream = RngRegistry(7).stream("u")
        for _ in range(100):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_exponential_nonnegative(self):
        stream = RngRegistry(7).stream("e")
        assert all(stream.exponential(10.0) >= 0 for _ in range(100))

    def test_exponential_zero_mean(self):
        stream = RngRegistry(7).stream("e0")
        assert stream.exponential(0.0) == 0.0

    def test_randint_inclusive(self):
        stream = RngRegistry(7).stream("i")
        draws = {stream.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_choice_and_shuffle(self):
        stream = RngRegistry(7).stream("c")
        items = list(range(10))
        assert stream.choice(items) in items
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items

    @given(st.floats(min_value=0.01, max_value=1e6), st.floats(min_value=0, max_value=0.5))
    def test_jitter_bounds(self, value, fraction):
        stream = RngRegistry(7).stream("j")
        jittered = stream.jitter(value, fraction)
        assert value * (1 - fraction) - 1e-9 <= jittered <= value * (1 + fraction) + 1e-9

    def test_jitter_zero_fraction_identity(self):
        stream = RngRegistry(7).stream("j0")
        assert stream.jitter(5.0, 0.0) == 5.0
