"""Node kernel facade: spawn/reap, allocation charging, file I/O."""

import pytest

from repro.errors import ConfigurationError, NoSuchProcessError
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.signals import Signal
from repro.sim.engine import Simulation
from repro.units import GB, MB


@pytest.fixture
def kernel():
    return NodeKernel(
        Simulation(seed=2),
        NodeConfig(
            ram_bytes=1 * GB,
            os_reserved_bytes=128 * MB,
            page_cache_min_bytes=0,
            hostname="k",
        ),
    )


class TestProcessTable:
    def test_spawn_assigns_unique_pids(self, kernel):
        pids = {kernel.spawn(f"p{i}").pid for i in range(5)}
        assert len(pids) == 5

    def test_lookup_live_process(self, kernel):
        proc = kernel.spawn("p")
        assert kernel.process(proc.pid) is proc

    def test_lookup_unknown_pid_raises(self, kernel):
        with pytest.raises(NoSuchProcessError):
            kernel.process(99999)

    def test_live_processes_excludes_dead(self, kernel):
        a = kernel.spawn("a")
        b = kernel.spawn("b")
        kernel.signal(a.pid, Signal.SIGKILL)
        assert kernel.live_processes() == [b]

    def test_stopped_processes(self, kernel):
        a = kernel.spawn("a")
        kernel.spawn("b")
        kernel.signal(a.pid, Signal.SIGSTOP)
        assert kernel.stopped_processes() == [a]


class TestAllocationCharge:
    def test_touch_time_linear_in_bytes(self, kernel):
        proc = kernel.spawn("p")
        charge = kernel.charge_allocation(proc, 120 * MB)
        expected = 120 * MB / kernel.config.mem_touch_bw
        assert charge.touch_time == pytest.approx(expected)
        assert charge.total_time >= charge.touch_time

    def test_clean_allocation_has_no_touch_time(self, kernel):
        proc = kernel.spawn("p")
        charge = kernel.charge_allocation(proc, 64 * MB, dirty=False)
        assert charge.touch_time == 0.0
        assert proc.image.resident_clean == 64 * MB

    def test_release_memory(self, kernel):
        proc = kernel.spawn("p")
        kernel.charge_allocation(proc, 100 * MB)
        freed = kernel.release_memory(proc, 40 * MB)
        assert freed == 40 * MB
        assert proc.image.virtual == 60 * MB

    def test_memory_summary_consistent(self, kernel):
        proc = kernel.spawn("p")
        kernel.charge_allocation(proc, 100 * MB)
        kernel.vmm.cache_file_read(50 * MB)
        summary = kernel.memory_summary()
        assert summary["process_resident"] == 100 * MB
        assert summary["page_cache"] == 50 * MB
        assert (
            summary["free_ram"]
            == summary["usable_ram"] - 100 * MB - 50 * MB
        )


class TestFileIO:
    def test_read_file_populates_cache(self, kernel):
        done = []
        kernel.read_file(100 * MB, lambda: done.append(kernel.sim.now))
        kernel.sim.run()
        assert done
        assert kernel.vmm.page_cache.size == 100 * MB
        assert kernel.disk.bytes_read == 100 * MB

    def test_write_file_timing(self, kernel):
        done = []
        kernel.write_file(90 * MB, lambda: done.append(kernel.sim.now))
        kernel.sim.run()
        assert done == [pytest.approx(90 * MB / kernel.config.disk_write_bw)]


class TestInvariants:
    def test_check_invariants_after_churn(self, kernel):
        procs = [kernel.spawn(f"p{i}") for i in range(4)]
        for proc in procs:
            kernel.charge_allocation(proc, 150 * MB)
        kernel.signal(procs[0].pid, Signal.SIGSTOP)
        kernel.charge_allocation(procs[1], 200 * MB)
        kernel.signal(procs[2].pid, Signal.SIGKILL)
        kernel.check_invariants()

    def test_node_config_validation(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(ram_bytes=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(os_reserved_bytes=5 * GB)
        with pytest.raises(ConfigurationError):
            NodeConfig(swappiness=150)
        with pytest.raises(ConfigurationError):
            NodeConfig(cores=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(direct_reclaim_fraction=1.5)

    def test_config_replace(self):
        config = NodeConfig()
        other = config.replace(hostname="x", cores=8)
        assert other.hostname == "x"
        assert other.cores == 8
        assert config.hostname != "x"
