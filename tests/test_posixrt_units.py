"""posixrt pieces that need no live processes."""

import json

import pytest

from repro.posixrt.controller import StatusRecord, WorkerSpec
from repro.posixrt.worker import WorkerMain
from repro.units import MB


class TestWorkerSpec:
    def test_json_round_trip(self):
        spec = WorkerSpec(
            input_bytes=8 * MB,
            chunk_bytes=1 * MB,
            memory_bytes=2 * MB,
            rate_bytes_per_sec=4 * MB,
            name="w",
        )
        payload = json.loads(spec.to_json("/tmp/status"))
        assert payload["input_bytes"] == 8 * MB
        assert payload["status_path"] == "/tmp/status"
        assert payload["rate_bytes_per_sec"] == 4 * MB

    def test_defaults(self):
        spec = WorkerSpec()
        assert spec.input_bytes == 16 * MB
        assert spec.memory_bytes == 0


class TestWorkerMainInProcess:
    """Drive the worker's logic in-process (tiny sizes)."""

    def make(self, tmp_path, **overrides):
        spec = {
            "input_bytes": 256 * 1024,
            "chunk_bytes": 64 * 1024,
            "memory_bytes": overrides.pop("memory_bytes", 1 * MB),
            "rate_bytes_per_sec": 64 * MB,
            "status_path": str(tmp_path / "status"),
        }
        spec.update(overrides)
        return WorkerMain(spec)

    def test_full_run_emits_protocol(self, tmp_path):
        worker = self.make(tmp_path)
        assert worker.run() == 0
        lines = (tmp_path / "status").read_text().splitlines()
        kinds = [line.split(" ", 1)[0] for line in lines]
        assert kinds[0] == "PID"
        assert "ALLOCATED" in kinds
        assert "PARSED" in kinds
        assert "READBACK" in kinds
        assert kinds[-1] == "DONE"

    def test_progress_reaches_one(self, tmp_path):
        worker = self.make(tmp_path, memory_bytes=0)
        worker.run()
        progress = [
            float(line.split(" ", 1)[1])
            for line in (tmp_path / "status").read_text().splitlines()
            if line.startswith("PROGRESS")
        ]
        assert progress == sorted(progress)
        assert progress[-1] == pytest.approx(1.0)

    def test_memory_is_dirtied_and_read_back(self, tmp_path):
        worker = self.make(tmp_path, memory_bytes=1 * MB)
        worker.allocate_memory()
        checksum = worker.readback_memory()
        assert checksum > 0  # every page carries the written byte


class TestStatusRecord:
    def test_fields(self):
        record = StatusRecord("PROGRESS", "0.5")
        assert record.kind == "PROGRESS"
        assert record.value == "0.5"
