"""Per-process memory accounting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OSModelError
from repro.osmodel.memory import MemoryImage
from repro.units import MB, PAGE_SIZE, page_align


class TestBasicAccounting:
    def test_allocate_dirty(self):
        image = MemoryImage()
        added = image.allocate(10 * MB, dirty=True, now=1.0)
        assert added == 10 * MB
        assert image.resident_dirty == 10 * MB
        assert image.resident_clean == 0
        assert image.virtual == 10 * MB

    def test_allocate_clean(self):
        image = MemoryImage()
        image.allocate(4 * MB, dirty=False, now=0.0)
        assert image.resident_clean == 4 * MB

    def test_allocate_page_aligns(self):
        image = MemoryImage()
        added = image.allocate(PAGE_SIZE + 1, dirty=True, now=0.0)
        assert added == 2 * PAGE_SIZE

    def test_allocate_negative_raises(self):
        with pytest.raises(OSModelError):
            MemoryImage().allocate(-1, dirty=True, now=0.0)

    def test_free_prefers_swapped_then_clean(self):
        image = MemoryImage()
        image.allocate(10 * MB, dirty=True, now=0.0)
        image.allocate(4 * MB, dirty=False, now=0.0)
        plan = image.plan_pageout(6 * MB)
        image.apply_pageout(plan)  # 4 clean dropped + 2 dirty swapped
        freed = image.free(3 * MB, now=1.0)
        assert freed == 3 * MB
        assert image.swapped == 0  # 2 MB swap freed first
        assert image.resident_clean == 0  # then clean

    def test_dirty_all(self):
        image = MemoryImage()
        image.allocate(4 * MB, dirty=False, now=0.0)
        image.dirty_all(now=1.0)
        assert image.resident_clean == 0
        assert image.resident_dirty == 4 * MB


class TestPageout:
    def test_plan_prefers_clean(self):
        image = MemoryImage()
        image.allocate(6 * MB, dirty=True, now=0.0)
        image.allocate(4 * MB, dirty=False, now=0.0)
        plan = image.plan_pageout(5 * MB)
        assert plan.drop_clean == 4 * MB
        assert plan.swap_dirty == 1 * MB
        assert plan.total == 5 * MB

    def test_plan_capped_at_resident(self):
        image = MemoryImage()
        image.allocate(2 * MB, dirty=True, now=0.0)
        plan = image.plan_pageout(100 * MB)
        assert plan.total == 2 * MB

    def test_plan_zero_or_negative(self):
        image = MemoryImage()
        image.allocate(2 * MB, dirty=True, now=0.0)
        assert image.plan_pageout(0).total == 0
        assert image.plan_pageout(-5).total == 0

    def test_apply_moves_dirty_to_swap(self):
        image = MemoryImage()
        image.allocate(8 * MB, dirty=True, now=0.0)
        plan = image.plan_pageout(3 * MB)
        image.apply_pageout(plan)
        assert image.swapped == 3 * MB
        assert image.resident_dirty == 5 * MB
        assert image.virtual == 8 * MB  # virtual size unchanged

    def test_apply_invalid_plan_raises(self):
        image = MemoryImage()
        image.allocate(1 * MB, dirty=True, now=0.0)
        from repro.osmodel.memory import PageoutPlan

        with pytest.raises(OSModelError):
            image.apply_pageout(PageoutPlan(drop_clean=0, swap_dirty=2 * MB))


class TestPagein:
    def test_page_in_becomes_clean(self):
        image = MemoryImage()
        image.allocate(8 * MB, dirty=True, now=0.0)
        image.apply_pageout(image.plan_pageout(8 * MB))
        paged = image.page_in(8 * MB, now=2.0)
        assert paged == 8 * MB
        assert image.swapped == 0
        assert image.resident_clean == 8 * MB  # swap-backed pages are clean

    def test_page_in_capped_at_swapped(self):
        image = MemoryImage()
        image.allocate(4 * MB, dirty=True, now=0.0)
        image.apply_pageout(image.plan_pageout(2 * MB))
        assert image.page_in(100 * MB, now=1.0) == 2 * MB


@st.composite
def memory_ops(draw):
    """A random sequence of (op, size) memory operations."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc_d", "alloc_c", "free", "pageout", "pagein"]),
                st.integers(min_value=0, max_value=64 * MB),
            ),
            max_size=40,
        )
    )
    return ops


class TestPropertyInvariants:
    @settings(max_examples=60)
    @given(memory_ops())
    def test_invariants_hold_under_any_sequence(self, ops):
        image = MemoryImage()
        for i, (op, size) in enumerate(ops):
            if op == "alloc_d":
                image.allocate(size, dirty=True, now=float(i))
            elif op == "alloc_c":
                image.allocate(size, dirty=False, now=float(i))
            elif op == "free":
                freed = image.free(size, now=float(i))
                assert freed <= page_align(size)
            elif op == "pageout":
                plan = image.plan_pageout(size)
                image.apply_pageout(plan)
            elif op == "pagein":
                image.page_in(size, now=float(i))
            image.check_invariants()
            assert image.resident >= 0
            assert image.swapped >= 0
            assert image.virtual == image.resident + image.swapped

    @settings(max_examples=60)
    @given(st.integers(min_value=0, max_value=128 * MB),
           st.integers(min_value=0, max_value=128 * MB))
    def test_pageout_pagein_round_trip(self, alloc, out):
        image = MemoryImage()
        image.allocate(alloc, dirty=True, now=0.0)
        virtual_before = image.virtual
        plan = image.plan_pageout(out)
        image.apply_pageout(plan)
        image.page_in(image.swapped, now=1.0)
        assert image.virtual == virtual_before
        assert image.swapped == 0
