"""Cross-layer integration: the two-job microbenchmark end to end."""

import pytest

from repro.hadoop.cluster import HadoopCluster
from repro.preemption.base import make_primitive
from repro.schedulers.dummy import DummyScheduler
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from repro.workloads.synthetic import two_job_microbenchmark
from tests.conftest import fast_hadoop_config, small_node_config

pytestmark = pytest.mark.integration


def run_two_job(
    primitive: str,
    r: float = 0.5,
    seed: int = 1,
    heavy: bool = False,
    jitter: float = 0.0,
):
    """Small/fast version of the paper's microbenchmark."""
    cluster = HadoopCluster(
        num_nodes=1,
        node_config=small_node_config(),
        hadoop_config=fast_hadoop_config(task_time_jitter=jitter),
        scheduler=DummyScheduler(),
        seed=seed,
        trace=True,
    )
    footprint = 450 * MB if heavy else 0
    tl, th = two_job_microbenchmark(
        heavy=heavy,
        tl_footprint=footprint,
        th_footprint=footprint,
        input_bytes=70 * MB,
        parse_rate=7 * MB,
    )
    if primitive == "natjam":
        # Scale the checkpoint to the 70 MB tasks of this fast setup.
        prim = make_primitive(
            primitive, cluster, fixed_state_bytes=32 * MB, checkpoint_overhead=0.3
        )
    else:
        prim = make_primitive(primitive, cluster)
    job_tl = cluster.submit_job(tl)

    def trigger():
        cluster.jobtracker.submit_job(th)
        tip = job_tl.tips[0]
        if tip.state.value == "RUNNING":
            prim.preempt(tip)

    cluster.when_job_progress("tl", r, trigger)
    cluster.jobtracker.on_job_complete(
        lambda job: prim.restore(job_tl.tips[0]) if job.spec.name == "th" else None
    )
    cluster.run_until_jobs_complete(timeout=7200)
    job_th = cluster.job_by_name("th")
    makespan = (
        max(job_tl.finish_time, job_th.finish_time) - job_tl.submit_time
    )
    return cluster, job_tl, job_th, makespan


class TestPrimitiveOrdering:
    """The paper's headline inequalities must hold."""

    def test_sojourn_ordering(self):
        sojourns = {
            p: run_two_job(p)[2].sojourn_time for p in ("wait", "kill", "suspend")
        }
        assert sojourns["suspend"] < sojourns["kill"] < sojourns["wait"]

    def test_makespan_ordering(self):
        makespans = {p: run_two_job(p)[3] for p in ("wait", "kill", "suspend")}
        assert makespans["kill"] > makespans["suspend"]
        # suspend within a few seconds of wait (latency of the
        # suspend/resume round trips, no redundant work)
        assert makespans["suspend"] - makespans["wait"] < 5.0

    def test_wait_sojourn_decreases_with_progress(self):
        early = run_two_job("wait", r=0.2)[2].sojourn_time
        late = run_two_job("wait", r=0.8)[2].sojourn_time
        assert late < early

    def test_kill_makespan_increases_with_progress(self):
        early = run_two_job("kill", r=0.2)[3]
        late = run_two_job("kill", r=0.8)[3]
        assert late > early

    def test_suspend_preserves_all_work(self):
        _, job_tl, _, _ = run_two_job("suspend")
        assert job_tl.wasted_seconds == 0.0

    def test_kill_wastes_work(self):
        _, job_tl, _, _ = run_two_job("kill")
        assert job_tl.wasted_seconds > 0


class TestHeavyTasks:
    def test_suspension_causes_swap(self):
        cluster, job_tl, job_th, _ = run_two_job("suspend", heavy=True)
        attempt = cluster.attempts_of("tl")[0]
        assert attempt.lifetime_swapped_bytes() > 0

    def test_light_tasks_never_swap(self):
        cluster, _, _, _ = run_two_job("suspend", heavy=False)
        assert cluster.total_swapped_out_bytes() == 0

    def test_heavy_suspend_slower_than_light(self):
        light = run_two_job("suspend", heavy=False)[3]
        heavy = run_two_job("suspend", heavy=True)[3]
        assert heavy > light


class TestDeterminism:
    def test_same_seed_identical_metrics(self):
        a = run_two_job("suspend", seed=42)
        b = run_two_job("suspend", seed=42)
        assert a[2].sojourn_time == b[2].sojourn_time
        assert a[3] == b[3]

    def test_different_seed_differs_slightly(self):
        a = run_two_job("suspend", seed=1, jitter=0.03)[2].sojourn_time
        b = run_two_job("suspend", seed=2, jitter=0.03)[2].sojourn_time
        assert a != b
        assert abs(a - b) / a < 0.2  # jitter, not chaos

    def test_invariants_after_full_run(self):
        cluster, _, _, _ = run_two_job("suspend", heavy=True)
        cluster.check_invariants()


class TestNatjamIntegration:
    def test_natjam_completes_with_fast_forward(self):
        cluster, job_tl, job_th, makespan = run_two_job("natjam")
        tip = job_tl.tips[0]
        # The tip was killed and rescheduled, but work was not redone:
        # the second attempt processed only the remaining input.
        assert tip.next_attempt_number == 2
        wait_makespan = run_two_job("wait")[3]
        kill_makespan = run_two_job("kill")[3]
        assert makespan < kill_makespan
        assert makespan > wait_makespan  # serialization is never free

    def test_natjam_pays_more_than_suspend(self):
        natjam = run_two_job("natjam")[3]
        suspend = run_two_job("suspend")[3]
        assert natjam > suspend


class TestMultiNode:
    def test_two_nodes_run_tasks_in_parallel(self):
        cluster = HadoopCluster(
            num_nodes=2,
            node_config=small_node_config(),
            hadoop_config=fast_hadoop_config(),
            seed=3,
        )
        spec = JobSpec(
            name="wide",
            tasks=[
                TaskSpec(input_bytes=35 * MB, parse_rate=7 * MB, output_bytes=0)
                for _ in range(2)
            ],
        )
        job = cluster.submit_job(spec)
        cluster.run_until_jobs_complete()
        trackers = {t.tracker for t in job.tips}
        assert trackers == {"node00", "node01"}
