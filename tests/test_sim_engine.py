"""The discrete-event kernel: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.engine import Simulation


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulation()
        fired = []
        for name in "abcde":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == list("abcde")

    def test_zero_delay_runs_after_pending_same_instant(self):
        sim = Simulation()
        fired = []
        sim.schedule(0.0, fired.append, "first")
        sim.call_soon(fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingInPastError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_chain(self):
        sim = Simulation()
        fired = []

        def level_one():
            fired.append(("one", sim.now))
            sim.schedule(1.0, level_two)

        def level_two():
            fired.append(("two", sim.now))

        sim.schedule(1.0, level_one)
        sim.run()
        assert fired == [("one", 1.0), ("two", 2.0)]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_returns_false(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulation()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.pending


class TestCancellationCounter:
    """pending_events is a counter now; it must stay exact under heavy
    cancellation, compaction, and mixed pop/cancel interleavings."""

    def test_heavy_cancellation_count_exact(self):
        sim = Simulation()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for i, handle in enumerate(handles):
            if i % 3:
                handle.cancel()
        expected = sum(1 for i in range(500) if not i % 3)
        assert sim.pending_events == expected
        fired = 0
        while sim.step():
            fired += 1
        assert fired == expected
        assert sim.pending_events == 0

    def test_compaction_triggers_and_preserves_order(self):
        sim = Simulation()
        fired = []
        keep = []
        for i in range(200):
            handle = sim.schedule(float(200 - i), fired.append, 200 - i)
            if i % 2:
                keep.append(200 - i)
            else:
                handle.cancel()
        assert sim.compactions >= 1
        # Compaction shed dead weight: the raw heap holds the live
        # events plus only the cancellations since the last rebuild.
        assert sim.pending_events == len(keep)
        assert sim.heap_size < 200
        sim.run()
        assert fired == sorted(keep)

    def test_no_compaction_below_minimum_heap(self):
        sim = Simulation()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        assert sim.compactions == 0
        assert sim.pending_events == 0
        assert sim.heap_size == 10  # lazily discarded on pop
        sim.run()
        assert sim.heap_size == 0

    def test_counter_exact_after_peek_discards(self):
        sim = Simulation()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        # _peek_time pops the cancelled head; the counter must follow.
        sim.run(until=0.5)
        assert sim.pending_events == 1
        assert not sim.idle

    def test_cancel_during_callback_counted(self):
        sim = Simulation()
        victims = [sim.schedule(5.0, lambda: None) for _ in range(100)]

        def cancel_all():
            for victim in victims:
                victim.cancel()

        sim.schedule(1.0, cancel_all)
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_fired == 1

    def test_pending_events_is_constant_time_shape(self):
        # Not a timing assert: just pin that the property no longer
        # depends on scanning (heap_size >> pending_events is fine).
        sim = Simulation()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(63)]
        for handle in handles[1:]:
            handle.cancel()
        assert sim.heap_size == 63
        assert sim.pending_events == 1


class TestEngineInvariants:
    """The clock/ordering contracts every model layer relies on."""

    def test_now_monotonic_across_chained_events(self):
        sim = Simulation(seed=3)
        times = []
        rng = sim.rng.stream("t")

        def tick(depth):
            times.append(sim.now)
            if depth < 200:
                sim.schedule(rng.uniform(0.0, 2.0), tick, depth + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert times == sorted(times)
        assert len(times) == 201

    def test_same_instant_fifo_includes_mid_run_schedules(self):
        sim = Simulation()
        fired = []

        def first():
            fired.append("first")
            # Scheduled *during* the instant: still runs at t=1, after
            # everything already queued for t=1.
            sim.schedule(0.0, fired.append, "late")

        sim.schedule(1.0, first)
        sim.schedule(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second", "late"]
        assert sim.now == 1.0

    def test_run_until_advances_clock_with_empty_heap(self):
        sim = Simulation()
        sim.run(until=7.5)
        assert sim.now == 7.5
        assert sim.events_fired == 0

    def test_run_until_exact_boundary_fires_event_at_until(self):
        sim = Simulation()
        fired = []
        sim.schedule(2.0, fired.append, "at-boundary")
        sim.schedule(2.0000001, fired.append, "past")
        sim.run(until=2.0)
        assert fired == ["at-boundary"]
        assert sim.now == 2.0

    def test_repeated_run_until_is_a_paced_replay(self):
        sim = Simulation()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, fired.append, t)
        for checkpoint in (0.5, 1.5, 2.5, 5.0):
            sim.run(until=checkpoint)
            assert sim.now == checkpoint
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_stop_mid_run_keeps_pending_and_resumes(self):
        sim = Simulation()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "after")
        sim.run()
        assert fired == ["stop"]
        assert sim.pending_events == 1
        assert sim.now == 1.0
        sim.run()
        assert fired == ["stop", "after"]

    def test_stop_does_not_advance_clock_to_until(self):
        sim = Simulation()
        sim.schedule(1.0, sim.stop)
        sim.run(until=100.0)
        assert sim.now == 1.0


class TestRunControl:
    def test_run_until(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events(self):
        sim = Simulation()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_callback(self):
        sim = Simulation()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "never-before-resume")
        sim.run()
        assert fired == ["stop"]

    def test_run_not_reentrant(self):
        sim = Simulation()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_step_returns_false_when_idle(self):
        sim = Simulation()
        assert not sim.step()
        assert sim.idle

    def test_events_fired_counter(self):
        sim = Simulation()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 4


class TestDeterminism:
    def test_engine_trace_records_labels(self):
        sim = Simulation(trace=True)
        sim.schedule(1.0, lambda: None, label="hello")
        sim.run()
        assert sim.trace_log.first("hello") is not None

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulation()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestReschedule:
    """reschedule(): correctness of the deferred-entry reuse paths."""

    def test_defer_fires_at_new_time(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.reschedule(handle, 5.0)
        sim.run()
        assert fired == [5.0]
        assert handle.fired

    def test_advance_fires_at_new_time(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.reschedule(handle, 1.0)
        sim.run()
        assert fired == [1.0]

    def test_same_time_is_a_noop_reuse(self):
        sim = Simulation()
        handle = sim.schedule(2.0, lambda: None)
        before = sim.heap_size
        assert sim.reschedule(handle, 2.0) is handle
        assert sim.heap_size == before
        assert sim.reschedule_reuses == 1

    def test_defer_reuses_heap_entry(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        before = sim.heap_size
        sim.reschedule(handle, 9.0)
        assert sim.heap_size == before  # recycled lazily, no new push
        assert sim.reschedule_reuses == 1
        assert sim.pending_events == 1

    def test_repeated_defers_then_advance(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.reschedule(handle, 4.0)
        sim.reschedule(handle, 8.0)
        sim.reschedule(handle, 2.0)
        sim.run()
        assert fired == [2.0]
        assert sim.pending_events == 0

    def test_cancel_after_defer(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.reschedule(handle, 3.0)
        assert handle.cancel()
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_reschedule_into_past_rejected(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(SchedulingInPastError):
            sim.reschedule(handle, 1.5)

    def test_reschedule_fired_handle_rejected(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 2.0)

    def test_fifo_order_is_as_if_freshly_scheduled(self):
        # A reschedule behaves like cancel+schedule for same-instant
        # ordering: the moved event fires after events already queued
        # at the target time.
        sim = Simulation()
        fired = []
        moved = sim.schedule(1.0, fired.append, "moved")
        sim.schedule(3.0, fired.append, "incumbent")
        sim.reschedule(moved, 3.0)
        sim.run()
        assert fired == ["incumbent", "moved"]

    def test_pending_events_exact_under_mixed_traffic(self):
        sim = Simulation()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for i, handle in enumerate(handles):
            if i % 3 == 0:
                sim.reschedule(handle, float(i + 50))
            elif i % 3 == 1:
                sim.reschedule(handle, max(float(i) * 0.5, 0.0))
        for handle in handles[::5]:
            handle.cancel()
        alive = sum(1 for h in handles if h.pending)
        assert sim.pending_events == alive
        fired = 0
        while sim.step():
            fired += 1
        assert fired == alive
        assert sim.pending_events == 0

    def test_compaction_preserves_deferred_entries(self):
        sim = Simulation()
        fired = []
        keepers = []
        for i in range(200):
            handle = sim.schedule(float(i + 1), fired.append, i)
            if i % 2 == 0:
                handle.cancel()
            else:
                sim.reschedule(handle, float(i + 1) + 500.0)
                keepers.append(i)
        # enough cancellations to force at least one compaction
        assert sim.compactions >= 1
        sim.run()
        assert fired == keepers
        assert sim.pending_events == 0

    def test_peek_time_resolves_deferred_head(self):
        sim = Simulation()
        fired = []
        head = sim.schedule(1.0, fired.append, "late")
        sim.schedule(2.0, fired.append, "early")
        sim.reschedule(head, 10.0)
        # run(until) must not step past `until` chasing the stale head.
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_compaction_during_earlier_move_keeps_counter_exact(self):
        # Regression: an earlier-move reschedule bumps the dead-entry
        # counter and may trigger compaction *mid-reschedule*; the
        # handle's new entry must already be its representative by
        # then, or compaction resurrects the orphan as a duplicate and
        # the dead counter goes negative once both surface.
        sim = Simulation()
        keepers = [sim.schedule(float(i + 10), lambda: None) for i in range(100)]
        movers = [sim.schedule(1000.0 + i, lambda: None) for i in range(120)]
        for i, handle in enumerate(movers):
            # every move is earlier: each leaves one orphan entry
            sim.reschedule(handle, 500.0 - i)
        alive = len(keepers) + len(movers)
        assert sim.pending_events == alive
        fired = 0
        while sim.step():
            fired += 1
        assert fired == alive
        assert sim.pending_events == 0
        assert sim.heap_size == 0


class TestRunUntilWithMaxEvents:
    """run(until=..., max_events=...) interplay: the clock must only
    jump to ``until`` when nothing is left pending before it."""

    def test_max_events_halt_does_not_strand_pending_events(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run(until=10.0, max_events=1)
        assert fired == ["a"]
        # b is still pending at t=2 < until; jumping to 10 would
        # strand it in the past.
        assert sim.now == 1.0
        sim.run(until=10.0)
        assert fired == ["a", "b"]
        assert sim.now == 10.0

    def test_stop_halt_does_not_strand_pending_events(self):
        sim = Simulation()
        fired = []

        def first():
            fired.append("a")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, fired.append, "b")
        sim.run(until=10.0)
        assert fired == ["a"]
        assert sim.now == 1.0
        sim.run()
        assert fired == ["a", "b"]

    def test_until_alone_still_paces_the_clock(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run(until=7.0)
        assert sim.now == 7.0
        sim.run(until=9.0)  # empty heap: clock still advances
        assert sim.now == 9.0

    def test_same_time_reschedule_keeps_fifo_position(self):
        # The documented no-op: a reschedule to the event's *current*
        # time keeps its original position among same-instant peers
        # (unlike a real move, which re-sequences behind them).
        sim = Simulation()
        fired = []
        sim.schedule(2.0, fired.append, "a")
        pinned = sim.schedule(2.0, fired.append, "b")
        sim.schedule(2.0, fired.append, "c")
        sim.reschedule(pinned, 2.0)
        sim.run()
        assert fired == ["a", "b", "c"]
