"""The discrete-event kernel: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.engine import Simulation


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulation()
        fired = []
        for name in "abcde":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == list("abcde")

    def test_zero_delay_runs_after_pending_same_instant(self):
        sim = Simulation()
        fired = []
        sim.schedule(0.0, fired.append, "first")
        sim.call_soon(fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingInPastError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_chain(self):
        sim = Simulation()
        fired = []

        def level_one():
            fired.append(("one", sim.now))
            sim.schedule(1.0, level_two)

        def level_two():
            fired.append(("two", sim.now))

        sim.schedule(1.0, level_one)
        sim.run()
        assert fired == [("one", 1.0), ("two", 2.0)]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_returns_false(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulation()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.pending


class TestRunControl:
    def test_run_until(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events(self):
        sim = Simulation()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_callback(self):
        sim = Simulation()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "never-before-resume")
        sim.run()
        assert fired == ["stop"]

    def test_run_not_reentrant(self):
        sim = Simulation()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_step_returns_false_when_idle(self):
        sim = Simulation()
        assert not sim.step()
        assert sim.idle

    def test_events_fired_counter(self):
        sim = Simulation()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 4


class TestDeterminism:
    def test_engine_trace_records_labels(self):
        sim = Simulation(trace=True)
        sim.schedule(1.0, lambda: None, label="hello")
        sim.run()
        assert sim.trace_log.first("hello") is not None

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulation()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
