"""Batched-vs-unbatched heartbeat dispatch differential suite.

The batched dispatch path (``HadoopConfig.batch_heartbeats``) must be
*behaviorally invisible*: for any workload, the run with batching on
and the run with batching off -- everything else identical, including
the heartbeat phase grid -- must produce the same TraceLog digest,
the same completion times, the same wasted-work ledger, the same
metric sketch, event for event.  The scripts below throw seeded
workloads from every experiment family at both paths and compare
(mirroring the old-vs-new resource model suite in
``test_resources_differential.py``).

Why the invariant holds:

* **batch contexts are repairs, not approximations** -- the
  JobTracker's :class:`~repro.hadoop.heartbeat.HeartbeatBatch` caches
  the job snapshot, the pending-aux list and the scheduler's sorted
  candidate order across one engine event batch, and every cached
  structure is repaired through observer notes to exactly the state a
  from-scratch rebuild would compute (same floats, same tie-breaks,
  same iteration order);
* **batch ids never reorder events** -- the engine assigns batch ids
  passively to already-adjacent same-instant events; the event queue,
  the RNG draws and the trace stream are untouched;
* **the phase grid is mode-independent** -- ``heartbeat_phases`` is
  applied identically in both runs, so the only difference between
  the legs is whether the JobTracker amortizes its per-heartbeat
  scans, never *when* heartbeats happen.

Comparisons are exact (``==`` on digests, floats and sketches), not
tolerance-based: both paths must do the identical arithmetic in the
identical order.
"""

import pytest

from repro.experiments.memscale_study import (
    RESERVE_BYTES,
    SWAP_BYTES,
)
from repro.experiments.memscale_study import _run_once as memscale_run_once
from repro.experiments.runner import derive_seed
from repro.experiments.scale_study import _run_once as scale_run_once
from repro.experiments.shuffle_study import _run_once as shuffle_run_once

#: result keys every paired scale/shuffle/memscale run must agree on
#: (completion times, the wasted-work ledger total, and the full
#: metric sketch, which folds in the per-job sojourn distributions)
STRICT_KEYS = (
    "makespan",
    "mean_sojourn",
    "wasted",
    "jobs_completed",
    "events",
    "sketch",
    "trace_digest",
)


def assert_equivalent(batched, unbatched, what):
    """Exact equality on every strict key both results carry."""
    for key in STRICT_KEYS:
        if key in batched or key in unbatched:
            assert batched[key] == unbatched[key], (
                f"{what}: batched/unbatched diverged on {key!r}: "
                f"{batched.get(key)!r} != {unbatched.get(key)!r}"
            )


def _scale_pair(scenario, primitive, phases, seed_salt):
    seed = derive_seed(9000, "scale", scenario, 15, primitive, seed_salt)

    def run(batched):
        return scale_run_once(
            scenario=scenario, primitive_name=primitive, trackers=15,
            num_jobs=10, seed=seed, trace=True,
            heartbeat_phases=phases, batch_heartbeats=batched,
        )

    return run(True), run(False)


#: the scale-replay scripts: every scenario family, every preemption
#: primitive, drifting (phases=0) and phase-locked (1/4) heartbeat
#: grids, several seeds -- 12 scripts
SCALE_SCRIPTS = [
    ("baseline", "suspend", 4, 0),
    ("baseline", "suspend", 4, 1),
    ("baseline", "suspend", 0, 0),  # drifting grid: size-1 batches
    ("baseline", "suspend", 1, 0),  # single phase: cluster-wide batches
    ("baseline", "kill", 4, 0),
    ("baseline", "wait", 4, 0),
    ("shuffle-heavy", "suspend", 4, 0),
    ("shuffle-heavy", "kill", 4, 2),
    ("burst", "suspend", 4, 0),
    ("burst", "wait", 1, 1),
    ("diurnal", "suspend", 4, 0),
    ("steady", "suspend", 4, 0),
]


@pytest.mark.parametrize(
    "scenario,primitive,phases,seed_salt", SCALE_SCRIPTS,
    ids=[f"{s}-{p}-ph{ph}-s{salt}" for s, p, ph, salt in SCALE_SCRIPTS],
)
def test_scale_cell_equivalence(scenario, primitive, phases, seed_salt):
    batched, unbatched = _scale_pair(scenario, primitive, phases, seed_salt)
    assert_equivalent(
        batched, unbatched, f"scale/{scenario}/{primitive}/ph{phases}"
    )


#: the network-fabric shuffle scripts: flow-routed transfers whose
#: completion times depend on exact action ordering within heartbeats
SHUFFLE_SCRIPTS = [("kill", 0), ("suspend", 1)]


@pytest.mark.parametrize(
    "primitive,seed_salt", SHUFFLE_SCRIPTS,
    ids=[f"{p}-s{salt}" for p, salt in SHUFFLE_SCRIPTS],
)
def test_shuffle_cell_equivalence(primitive, seed_salt):
    seed = derive_seed(11000, "shuffle", 15, primitive, 2.5, 0.0, seed_salt)

    def run(batched):
        return shuffle_run_once(
            primitive_name=primitive, trackers=15, num_jobs=8,
            oversubscription=2.5, seed=seed, trace=True,
            heartbeat_phases=4, batch_heartbeats=batched,
        )

    assert_equivalent(run(True), run(False), f"shuffle/{primitive}")


#: the memory-admission scripts: all four modes, because the gated
#: ones read per-heartbeat headroom snapshots whose timing the phase
#: grid controls and whose consumption the batch must not perturb
MEMSCALE_MODES = ["kill", "wait", "suspend-gated", "suspend-ungated"]


@pytest.mark.parametrize("mode", MEMSCALE_MODES)
def test_memscale_cell_equivalence(mode):
    seed = derive_seed(
        12000, "memscale", 15, mode, SWAP_BYTES, RESERVE_BYTES, 0
    )

    def run(batched):
        return memscale_run_once(
            mode=mode, trackers=15, num_jobs=8, seed=seed, trace=True,
            heartbeat_phases=4, batch_heartbeats=batched,
        )

    assert_equivalent(run(True), run(False), f"memscale/{mode}")


#: the paper's two-job microbenchmark: suspension mid-flight at 50%
#: progress, where a single reordered action changes the figure
FIG2_PRIMITIVES = ["suspend", "kill"]


@pytest.mark.parametrize("primitive", FIG2_PRIMITIVES)
def test_fig2_cell_equivalence(primitive):
    from repro.experiments import params as P
    from repro.experiments.harness import TwoJobHarness

    def run(batched):
        config = P.paper_hadoop_config().replace(
            heartbeat_phases=4, batch_heartbeats=batched,
        )
        harness = TwoJobHarness(primitive, 0.5, runs=1, keep_traces=True,
                                hadoop_config=config)
        result = harness.run_once(seed=99)
        return result

    batched, unbatched = run(True), run(False)
    assert (
        batched.trace_cluster.sim.trace_log.digest()
        == unbatched.trace_cluster.sim.trace_log.digest()
    )
    assert batched.sojourn_th == unbatched.sojourn_th
    assert batched.makespan == unbatched.makespan
    assert batched.tl_wasted_seconds == unbatched.tl_wasted_seconds
    assert batched.suspend_count == unbatched.suspend_count


@pytest.mark.slow
def test_scale_2000_trace_digest_equivalence():
    """The acceptance cell: 2000 trackers on the steady mix with full
    tracing, batched vs unbatched TraceLog digests byte-identical.

    The wall-clock half of the acceptance bar (>=3x) lives in
    ``tools/bench_guard.py``'s ``scale_2000`` bench, which runs the
    600-job cell untraced; this test pins the *digest* half at the
    same tracker count with a lighter job load so the traced legs stay
    inside the slow-tier budget.
    """
    seed = derive_seed(9000, "scale", "steady", 2000, "suspend", 0)

    def run(batched):
        return scale_run_once(
            scenario="steady", primitive_name="suspend", trackers=2000,
            num_jobs=60, seed=seed, trace=True,
            heartbeat_phases=4, batch_heartbeats=batched,
        )

    assert_equivalent(run(True), run(False), "scale/steady/2000")
