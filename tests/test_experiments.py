"""Experiment harness: scaled-down shape checks of the paper's figures.

Each test runs a miniature version of one experiment (fewer runs,
fewer axis points) and asserts the *shape* claims the paper makes --
which curves dominate which, where the crossovers fall, how swap
grows.  The full-scale numbers live in the benchmark suite and
EXPERIMENTS.md.
"""

import pytest

from repro.experiments.fig2_baseline import run_fig2
from repro.experiments.fig4_memory_sweep import run_fig4
from repro.experiments.harness import TwoJobHarness
from repro.experiments.registry import get_experiment, list_experiments
from repro.units import GB

pytestmark = [pytest.mark.integration, pytest.mark.slow]

RUNS = 2
POINTS = [0.25, 0.75]


class TestHarness:
    def test_single_run_metrics_positive(self):
        result = TwoJobHarness("suspend", 0.5, runs=1).run()
        assert result.sojourn_th.mean > 0
        assert result.makespan.mean > result.sojourn_th.mean

    def test_runs_average_and_spread(self):
        result = TwoJobHarness("suspend", 0.5, runs=3).run()
        assert result.sojourn_th.count == 3
        # The paper's 5% spread check.
        assert result.sojourn_th.max_relative_deviation < 0.05

    def test_invalid_progress_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TwoJobHarness("suspend", 0.0)
        with pytest.raises(ConfigurationError):
            TwoJobHarness("suspend", 0.5, runs=0)


class TestFig2Shapes:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig2(runs=RUNS, progress_points=POINTS)

    def test_sojourn_ordering(self, report):
        sojourn = report.find_series("baseline-sojourn")
        for x in sojourn.x_values:
            assert sojourn.point("suspend", x) < sojourn.point("kill", x)
            assert sojourn.point("kill", x) < sojourn.point("wait", x)

    def test_wait_sojourn_decays(self, report):
        sojourn = report.find_series("baseline-sojourn")
        ys = sojourn.curves["wait"]
        assert ys[0] > ys[-1]

    def test_makespan_ordering(self, report):
        makespan = report.find_series("baseline-makespan")
        for x in makespan.x_values:
            assert makespan.point("kill", x) > makespan.point("suspend", x)
            # suspend within 3% of wait (the "negligible overhead" claim)
            assert makespan.point("suspend", x) <= makespan.point("wait", x) * 1.03

    def test_kill_makespan_grows(self, report):
        makespan = report.find_series("baseline-makespan")
        ys = makespan.curves["kill"]
        assert ys[-1] > ys[0]

    def test_suspend_beats_wait_even_at_90pct(self):
        # "outperforms all other primitives even when th arrives at 90%
        # completion rate of task tl"
        wait = TwoJobHarness("wait", 0.9, runs=RUNS).run()
        susp = TwoJobHarness("suspend", 0.9, runs=RUNS).run()
        assert susp.sojourn_th.mean < wait.sojourn_th.mean


class TestFig3Shapes:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig2(runs=RUNS, progress_points=[0.5], heavy=True)

    def test_kill_edges_suspend_on_sojourn(self, report):
        sojourn = report.find_series("worst-case-sojourn")
        assert sojourn.point("kill", 50.0) < sojourn.point("suspend", 50.0)

    def test_wait_edges_suspend_on_makespan(self, report):
        makespan = report.find_series("worst-case-makespan")
        assert makespan.point("wait", 50.0) < makespan.point("suspend", 50.0)

    def test_suspend_still_beats_wait_sojourn_and_kill_makespan(self, report):
        sojourn = report.find_series("worst-case-sojourn")
        makespan = report.find_series("worst-case-makespan")
        assert sojourn.point("suspend", 50.0) < sojourn.point("wait", 50.0)
        assert makespan.point("suspend", 50.0) < makespan.point("kill", 50.0)


class TestFig4Shapes:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig4(
            runs=RUNS, memory_points=[0, int(1.25 * GB), int(2.5 * GB)]
        )

    def test_swap_monotone_increasing(self, report):
        swap = report.find_series("fig4-paged-bytes").curves["swap"]
        assert swap[0] == pytest.approx(0.0, abs=1.0)
        assert swap[0] < swap[1] < swap[2]

    def test_swap_superlinear_start(self, report):
        # "swapped data grows more than linearly"
        series = report.find_series("fig4-paged-bytes")
        xs, ys = series.x_values, series.curves["swap"]
        slope_first = (ys[1] - ys[0]) / (xs[1] - xs[0])
        slope_second = (ys[2] - ys[1]) / (xs[2] - xs[1])
        assert slope_first < slope_second * 2.5  # not wildly sub-linear later

    def test_overheads_track_swap(self, report):
        overheads = report.find_series("fig4-overheads")
        sojourn = overheads.curves["th sojourn time"]
        makespan = overheads.curves["makespan"]
        assert sojourn[-1] > sojourn[0]
        assert makespan[-1] > makespan[0]
        assert makespan[-1] > 5.0  # clearly visible at 2.5 GB


class TestNatjamShape:
    def test_natjam_costs_more_than_suspend(self):
        report = get_experiment("natjam")(runs=RUNS, progress_points=[0.5])
        natjam = report.extras["mean_overhead_natjam_pct"]
        suspend = report.extras["mean_overhead_suspend_pct"]
        assert natjam > suspend
        # The paper quotes ~7% for Natjam; accept a broad band.
        assert 2.0 < natjam < 15.0
        assert suspend < 2.0


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(list_experiments()) == {
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "natjam",
            "eviction",
            "hfsp",
            "swappiness",
            "gc",
            "adaptive",
            "faults",
            "scale",
            "shuffle",
            "memscale",
        }

    def test_aliases(self):
        assert get_experiment("2a") is get_experiment("fig2")
        assert get_experiment("4") is get_experiment("fig4")

    def test_unknown_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_fig1_renders_schedules(self):
        report = get_experiment("fig1")()
        charts = report.extras["charts"]
        assert set(charts) == {"wait", "kill", "suspend"}
        # The suspend chart must show a suspension gap.
        assert "." in charts["suspend"]
        # The kill chart must show a restarted attempt (two rows for tl).
        assert charts["kill"].count("job0001") == 2
