"""Telemetry integration: the silence invariant and merge determinism.

The load-bearing guarantees:

* **silence** -- attaching a :class:`SpanCollector` and enabling
  engine profiling changes *nothing* observable: trace digests and
  metrics are byte-identical with telemetry on and off, across the
  two-job microbenchmark and the replay studies;
* **merge determinism** -- the sketch merged from ``--workers 4``
  shards digests identically to the serial merge;
* **reconciliation** -- summed kill-episode ``wasted_seconds`` in a
  trace equals the wasted-work ledger's preemption-kill charge;
* the ``repro trace`` CLI emits schema-valid Chrome trace JSON.
"""

import json

import pytest

from repro.experiments.runner import derive_seed
from repro.telemetry import SpanCollector, validate_chrome_trace
from repro.telemetry.capture import capture_experiment


def _scale_cell(**telemetry):
    from repro.experiments.scale_study import _run_once

    return _run_once(
        scenario="baseline",
        primitive_name="suspend",
        trackers=8,
        num_jobs=8,
        seed=derive_seed(9000, "scale", "baseline", 8, "suspend", 0),
        trace=True,
        **telemetry,
    )


def _memscale_cell(**telemetry):
    from repro.experiments.memscale_study import _run_once

    return _run_once(
        mode="suspend-gated",
        trackers=8,
        num_jobs=8,
        seed=derive_seed(12000, "memscale", 8, "suspend-gated", 0),
        trace=True,
        **telemetry,
    )


class TestSilenceInvariant:
    """Telemetry on vs off: event-for-event identical runs."""

    @pytest.mark.parametrize("cell", [_scale_cell, _memscale_cell])
    def test_study_cells_are_undisturbed(self, cell):
        plain = cell()
        collector = SpanCollector(include_heartbeats=True)
        traced = cell(collector=collector, profile=True)
        assert traced["trace_digest"] == plain["trace_digest"]
        assert collector.records_seen > 0
        for key, value in plain.items():
            if isinstance(value, (int, float)):
                assert traced[key] == value, key
        assert traced["sketch"] == plain["sketch"]

    def test_two_job_harness_is_undisturbed(self):
        from repro.experiments.harness import TwoJobHarness

        def run(**telemetry):
            harness = TwoJobHarness(
                "suspend", 0.5, runs=1, keep_traces=True, **telemetry
            )
            return harness.run_once(seed=4242)

        plain = run()
        traced = run(collector=SpanCollector(), profile=True)
        assert (
            traced.trace_cluster.sim.trace_log.digest()
            == plain.trace_cluster.sim.trace_log.digest()
        )
        assert traced.sojourn_th == plain.sojourn_th
        assert traced.makespan == plain.makespan
        assert traced.tl_wasted_seconds == plain.tl_wasted_seconds


class TestSketchMergeDeterminism:
    def test_workers_4_digest_matches_serial(self):
        from repro.experiments.scale_study import run_scale_study

        kwargs = dict(
            runs=1,
            cluster_sizes=[8],
            scenarios=["baseline", "burst"],
            primitives=["kill", "suspend"],
            num_jobs=8,
        )
        serial = run_scale_study(workers=1, **kwargs)
        sharded = run_scale_study(workers=4, **kwargs)
        assert (
            sharded.extras["sketch_digest"] == serial.extras["sketch_digest"]
        )
        assert json.dumps(sharded.extras["sketch"], sort_keys=True) == (
            json.dumps(serial.extras["sketch"], sort_keys=True)
        )
        # The historical metrics digest is untouched by the sketches.
        assert sharded.extras["digest"] == serial.extras["digest"]


class TestLedgerReconciliation:
    def test_kill_episode_waste_equals_ledger_charge(self):
        capture = capture_experiment("fig2")
        kill_cell = next(
            cell for cell in capture.cells if cell.name.endswith("/kill")
        )
        ledger_charge = kill_cell.wasted_by_cause.get("preemption-kill", 0.0)
        assert ledger_charge > 0.0
        assert kill_cell.collector.episode_wasted_seconds() == pytest.approx(
            ledger_charge, abs=1e-9
        )

    def test_suspend_episodes_waste_nothing(self):
        capture = capture_experiment("fig2")
        suspend_cell = next(
            cell for cell in capture.cells if cell.name.endswith("/suspend")
        )
        episodes = suspend_cell.collector.by_category("episode")
        assert episodes, "suspend run produced no preemption episodes"
        assert suspend_cell.collector.episode_wasted_seconds() == 0.0


class TestTraceCli:
    def test_trace_fig2_emits_valid_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig2.trace.json"
        rc = main(["trace", "fig2", "--quick", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        validate_chrome_trace(payload)
        events = payload["traceEvents"]
        episode_events = [
            e
            for e in events
            if e["ph"] == "X" and e["name"].startswith("suspend-episode:")
        ]
        assert episode_events, "trace has no suspend-episode spans"
        processes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert processes == {"fig2/wait", "fig2/kill", "fig2/suspend"}

    def test_trace_is_deterministic_across_invocations(self, tmp_path):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "fig2", "--quick", "--out", str(a)]) == 0
        assert main(["trace", "fig2", "--quick", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_trace_rejects_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["trace", "nonsense"]) == 1
        assert "error:" in capsys.readouterr().err


class TestEngineProfileCapture:
    def test_profile_records_label_counts(self):
        capture = capture_experiment("fig2")
        for cell in capture.cells:
            assert cell.engine["profile_enabled"]
            labels = cell.engine["labels"]
            assert sum(labels.values()) == cell.engine["events_fired"]
            assert "tt.heartbeat" in labels
