"""The shuffle experiment and the netmodel wiring through the cluster."""

import pytest

from repro.experiments.shuffle_study import run_shuffle_study
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.states import TipState
from repro.netmodel import NetConfig
from repro.netmodel.fetch import NetworkFetchItem
from repro.schedulers.hfsp import HfspScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec


def reduce_job(name="rj", maps=4, map_bytes=64 * MB, shuffle=64 * MB):
    tasks = [
        TaskSpec(kind=TaskKind.MAP, input_bytes=map_bytes) for _ in range(maps)
    ]
    tasks.append(
        TaskSpec(kind=TaskKind.REDUCE, input_bytes=shuffle, shuffle_bytes=shuffle)
    )
    return JobSpec(name=name, tasks=tasks)


def net_cluster(**overrides):
    defaults = dict(
        num_nodes=4,
        racks=2,
        seed=7,
        net_config=NetConfig.oversubscribed(
            hosts_per_rack=2, oversubscription=2.5
        ),
    )
    defaults.update(overrides)
    return HadoopCluster(**defaults)


class TestClusterWiring:
    def test_reduce_plans_carry_fetch_items(self):
        cluster = net_cluster()
        fetch_items = []

        def on_launch(attempt):
            if attempt.spec.kind is TaskKind.REDUCE:
                fetch_items.extend(
                    item
                    for item in attempt.jvm.engine.plan
                    if isinstance(item, NetworkFetchItem)
                )

        cluster.on_attempt_launched(on_launch)
        job = cluster.submit_job(reduce_job())
        cluster.run_until_jobs_complete([job])
        assert fetch_items, "reduce attempts should fetch over the fabric"
        sources = {host for item in fetch_items for host, _ in item.sources}
        assert sources <= set(cluster.topology.hosts())
        total = sum(item.total_bytes for item in fetch_items)
        assert total == 64 * MB  # shares sum exactly to shuffle_bytes

    def test_without_net_config_everything_stays_local(self):
        cluster = HadoopCluster(num_nodes=4, racks=2, seed=7)
        assert cluster.fabric is None
        job = cluster.submit_job(reduce_job())
        cluster.run_until_jobs_complete([job])
        assert job.state.value == "SUCCEEDED"
        assert cluster.wasted_network_bytes() == 0

    def test_shuffle_counters_reported(self):
        cluster = net_cluster()
        job = cluster.submit_job(reduce_job())
        cluster.run_until_jobs_complete([job])
        assert job.counters.value("task", "shuffle_bytes_fetched") == 64 * MB

    def test_kill_mid_job_charges_network_ledger(self):
        cluster = net_cluster()
        job = cluster.submit_job(
            reduce_job(maps=2, shuffle=256 * MB)
        )
        tip = [t for t in job.tips if t.spec.kind is TaskKind.REDUCE][0]

        def kill_reduce():
            if tip.state is TipState.RUNNING:
                cluster.jobtracker.kill_task(tip.tip_id)
            elif not job.state.terminal:
                cluster.sim.schedule(1.0, kill_reduce)

        cluster.sim.schedule(12.0, kill_reduce)
        cluster.run_until_jobs_complete([job], timeout=10_000)
        assert job.state.value == "SUCCEEDED"
        wasted = cluster.jobtracker.wasted.network_bytes_by_cause()
        assert wasted.get("preemption-kill", 0) > 0
        assert cluster.wasted_network_bytes() == sum(wasted.values())

    def test_suspend_resume_wastes_no_network(self):
        cluster = net_cluster()
        job = cluster.submit_job(reduce_job(maps=2, shuffle=512 * MB))
        tip = [t for t in job.tips if t.spec.kind is TaskKind.REDUCE][0]

        def suspend_reduce():
            if tip.state is TipState.RUNNING:
                cluster.jobtracker.suspend_task(tip.tip_id)
                cluster.sim.schedule(
                    15.0, lambda: cluster.jobtracker.resume_task(tip.tip_id)
                )
            elif not job.state.terminal:
                cluster.sim.schedule(1.0, suspend_reduce)

        cluster.sim.schedule(8.0, suspend_reduce)
        cluster.run_until_jobs_complete([job], timeout=10_000)
        assert job.state.value == "SUCCEEDED"
        assert tip.suspended_seconds > 0
        assert cluster.wasted_network_bytes() == 0

    def test_tracker_loss_charges_fetched_bytes(self):
        cluster = net_cluster(
            hadoop_config=None,
        )
        cluster.hadoop_config.tracker_expiry_interval = 20.0
        job = cluster.submit_job(reduce_job(maps=2, shuffle=1024 * MB))
        tip = [t for t in job.tips if t.spec.kind is TaskKind.REDUCE][0]
        state = {}

        def crash_reduce_host():
            if tip.state is TipState.RUNNING and tip.tracker:
                state["host"] = tip.tracker
                cluster.crash_tracker(tip.tracker)
            elif not job.state.terminal and "host" not in state:
                cluster.sim.schedule(1.0, crash_reduce_host)

        cluster.sim.schedule(10.0, crash_reduce_host)
        cluster.run_until_jobs_complete([job], timeout=10_000)
        assert "host" in state
        wasted = cluster.jobtracker.wasted.network_bytes_by_cause()
        assert wasted.get("tracker-lost", 0) > 0


class TestHdfsRemoteReads:
    def test_remote_read_crosses_fabric(self):
        cluster = net_cluster(replication=1)
        cluster.create_input("/data/x", 64 * MB, writer_host="node00")
        entry = cluster.namenode.file("/data/x")
        block = entry.blocks[0]
        done = {}
        flows_before = cluster.fabric.flows_started
        serving = cluster.namenode.open_block(
            block.block_id, "node03", lambda: done.setdefault("t", cluster.sim.now)
        )
        cluster.sim.run(until=60)
        assert "t" in done
        assert serving.host == "node00"
        assert serving.remote_bytes_served == 64 * MB
        assert cluster.fabric.flows_started == flows_before + 1

    def test_local_read_stays_off_fabric(self):
        cluster = net_cluster(replication=1)
        cluster.create_input("/data/y", 64 * MB, writer_host="node01")
        block = cluster.namenode.file("/data/y").blocks[0]
        done = {}
        flows_before = cluster.fabric.flows_started
        cluster.namenode.open_block(
            block.block_id, "node01", lambda: done.setdefault("t", cluster.sim.now)
        )
        cluster.sim.run(until=60)
        assert "t" in done
        assert cluster.fabric.flows_started == flows_before

    def test_replica_choice_prefers_reader_rack(self):
        cluster = net_cluster(replication=2)
        cluster.create_input("/data/z", 64 * MB, writer_host="node00")
        block = cluster.namenode.file("/data/z").blocks[0]
        hosts = cluster.namenode.locate_block(block.block_id).hosts
        assert len(hosts) == 2
        # A reader colocated with a replica gets the node-local copy.
        serving = cluster.namenode.open_block(block.block_id, hosts[1], lambda: None)
        assert serving.host == hosts[1]


class TestLocalityKnob:
    def _scheduler_cluster(self, wait):
        scheduler = HfspScheduler(locality_wait_seconds=wait)
        cluster = net_cluster(scheduler=scheduler, num_nodes=4, racks=2)
        scheduler.attach_cluster(cluster)
        return scheduler, cluster

    def test_off_rack_reduce_declined_until_wait_expires(self):
        scheduler, cluster = self._scheduler_cluster(wait=30.0)
        job = cluster.submit_job(reduce_job(maps=2))
        jt = cluster.jobtracker
        reduce_tip = [t for t in job.tips if t.spec.kind is TaskKind.REDUCE][0]
        job.state = type(job.state).RUNNING  # skip setup gating for the unit test
        for m in job.tips:
            if m.role.value == "m":
                m.tracker = "node00"  # both map outputs on rack0
        # An off-rack tracker's offer is declined...
        chosen = scheduler._take_schedulable(job, 1, 1, tracker="node01")
        assert reduce_tip not in chosen
        assert reduce_tip.locality_skipped_at == cluster.sim.now
        # ...and once the wait expires, anywhere goes.
        cluster.sim.run(until=31.0)
        chosen = scheduler._take_schedulable(job, 1, 1, tracker="node01")
        assert reduce_tip in chosen

    def test_rack_local_offer_taken_immediately_and_resets_clock(self):
        scheduler, cluster = self._scheduler_cluster(wait=30.0)
        job = cluster.submit_job(reduce_job(maps=2))
        reduce_tip = [t for t in job.tips if t.spec.kind is TaskKind.REDUCE][0]
        job.state = type(job.state).RUNNING
        for m in job.tips:
            if m.role.value == "m":
                m.tracker = "node00"
        # node01 is rack1; node00/node02 are rack0 (racks=2 interleave).
        assert cluster.topology.rack_of("node02") == cluster.topology.rack_of(
            "node00"
        )
        scheduler._take_schedulable(job, 1, 1, tracker="node01")
        assert reduce_tip.locality_skipped_at is not None
        chosen = scheduler._take_schedulable(job, 1, 1, tracker="node02")
        assert reduce_tip in chosen
        # A near offer restarts the delay clock for later far offers.
        assert reduce_tip.locality_skipped_at is None

    def test_zero_wait_accepts_everything(self):
        scheduler, cluster = self._scheduler_cluster(wait=0.0)
        job = cluster.submit_job(reduce_job(maps=2))
        job.state = type(job.state).RUNNING
        for m in job.tips:
            if m.role.value == "m":
                m.tracker = "node00"
        chosen = scheduler._take_schedulable(job, 4, 4, tracker="node01")
        assert len(chosen) == len(job.tips)

    def test_maps_without_input_path_have_no_preference(self):
        scheduler, cluster = self._scheduler_cluster(wait=30.0)
        job = cluster.submit_job(reduce_job(maps=2))
        job.state = type(job.state).RUNNING
        map_tips = [t for t in job.tips if t.role.value == "m"]
        chosen = scheduler._take_schedulable(job, 4, 0, tracker="node01")
        assert set(map_tips) <= set(chosen)

    def test_experiment_runs_with_locality_wait(self):
        report = run_shuffle_study(
            cluster_sizes=[4], num_jobs=6, locality_wait=9.0,
            primitives=["suspend"],
        )
        metrics = report.extras["metrics"]
        assert metrics[4]["suspend"]["mean_sojourn"][0] > 0


class TestShuffleStudy:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_shuffle_study(cluster_sizes=[6], num_jobs=14)

    def test_all_cells_complete(self, quick_report):
        metrics = quick_report.extras["metrics"]
        for primitive in quick_report.extras["primitives"]:
            cell = metrics[6][primitive]
            assert cell["mean_sojourn"][0] > 0
            assert cell["uplink_util"][0] > 0
            assert cell["offrack_flows"][0] > 0

    def test_suspend_strictly_beats_kill_on_wasted_network(self, quick_report):
        metrics = quick_report.extras["metrics"]
        kill_wasted = metrics[6]["kill"]["wasted_net_mb"][0]
        suspend_wasted = metrics[6]["suspend"]["wasted_net_mb"][0]
        assert kill_wasted > 0, "kill cell never killed a fetching reduce"
        assert suspend_wasted < kill_wasted
        # Suspension's whole point: paused fetches keep their bytes.
        assert suspend_wasted == 0
        assert metrics[6]["wait"]["wasted_net_mb"][0] == 0

    def test_parallel_digest_identical_to_serial(self):
        serial = run_shuffle_study(cluster_sizes=[5], num_jobs=8, workers=1)
        parallel = run_shuffle_study(cluster_sizes=[5], num_jobs=8, workers=3)
        assert serial.extras["digest"] == parallel.extras["digest"]

    def test_report_renders(self, quick_report):
        text = quick_report.render(plots=False)
        assert "wasted network traffic" in text
        assert "metrics digest" in text

    def test_rejects_bad_oversubscription(self):
        with pytest.raises(Exception):
            run_shuffle_study(cluster_sizes=[4], num_jobs=4, oversubscription=0)
