"""JobTracker protocol: the paper's Section III-B heartbeat dance."""

import pytest

from repro.errors import TaskStateError, UnknownJobError, UnknownTaskError
from repro.hadoop.job import JobState
from repro.hadoop.states import TipState
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskSpec
from tests.conftest import quick_cluster


def job_spec(name="job", tasks=1, input_mb=70, priority=0):
    return JobSpec(
        name=name,
        priority=priority,
        tasks=[
            TaskSpec(input_bytes=input_mb * MB, parse_rate=7 * MB, output_bytes=0,
                     name=f"{name}-{i}")
            for i in range(tasks)
        ],
    )


class TestJobLifecycle:
    def test_setup_gate_before_maps(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        assert job.state is JobState.PREP
        cluster.start()
        cluster.sim.run(until=2.0)
        assert job.state is JobState.RUNNING  # setup task completed
        assert job.launch_time is not None

    def test_cleanup_gate_before_success(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec(input_mb=7))
        cluster.run_until_jobs_complete()
        assert job.state is JobState.SUCCEEDED
        assert job.cleanup_tip.complete
        # Cleanup ran after the last work tip.
        assert job.cleanup_tip.finished_at >= job.tips[0].finished_at

    def test_no_setup_cleanup_mode(self):
        cluster = quick_cluster(run_job_setup_cleanup=False)
        job = cluster.submit_job(job_spec(input_mb=7))
        assert job.state is JobState.RUNNING
        cluster.run_until_jobs_complete()
        assert job.state is JobState.SUCCEEDED
        assert job.setup_tip is None

    def test_completion_callback(self):
        cluster = quick_cluster()
        seen = []
        cluster.jobtracker.on_job_complete(lambda j: seen.append(j.spec.name))
        cluster.submit_job(job_spec(input_mb=7))
        cluster.run_until_jobs_complete()
        assert seen == ["job"]

    def test_sojourn_time(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec(input_mb=7))
        cluster.run_until_jobs_complete()
        assert job.sojourn_time == pytest.approx(
            job.finish_time - job.submit_time
        )

    def test_kill_job(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=4.0)
        cluster.jobtracker.kill_job(job.job_id)
        cluster.sim.run(until=10.0)
        assert job.state is JobState.KILLED
        # Killed jobs do not reschedule their tips.
        assert all(t.state is not TipState.RUNNING for t in job.tips)

    def test_unknown_lookups_raise(self):
        cluster = quick_cluster()
        with pytest.raises(UnknownJobError):
            cluster.jobtracker.job("zzz")
        with pytest.raises(UnknownJobError):
            cluster.jobtracker.job_by_name("zzz")
        with pytest.raises(UnknownTaskError):
            cluster.jobtracker.tip("zzz")
        with pytest.raises(UnknownTaskError):
            cluster.jobtracker.attempt_descriptor("zzz")


class TestSuspendProtocol:
    def test_must_suspend_then_suspended(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        tip = job.tips[0]
        states = []

        def suspend():
            cluster.jobtracker.suspend_task(tip.tip_id)
            states.append(tip.state)

        cluster.when_job_progress("job", 0.3, suspend)
        cluster.sim.run(until=10.0)
        assert states == [TipState.MUST_SUSPEND]
        assert tip.state is TipState.SUSPENDED  # confirmed via heartbeat

    def test_suspend_non_running_rejected(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        with pytest.raises(TaskStateError):
            cluster.jobtracker.suspend_task(job.tips[0].tip_id)

    def test_completed_in_the_meanwhile(self):
        # Suspend lands so close to completion that the task finishes
        # first; the JobTracker must record SUCCEEDED, not SUSPENDED.
        cluster = quick_cluster(heartbeat_interval=3.0)
        job = cluster.submit_job(job_spec(input_mb=14))
        cluster.start()
        tip = job.tips[0]
        cluster.when_job_progress(
            "job", 0.995, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED
        assert job.state is JobState.SUCCEEDED

    def test_resume_round_trip(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        tip = job.tips[0]
        cluster.when_job_progress(
            "job", 0.3, lambda: cluster.jobtracker.suspend_task(tip.tip_id)
        )
        cluster.sim.run(until=10.0)
        assert tip.state is TipState.SUSPENDED
        cluster.jobtracker.resume_task(tip.tip_id)
        assert tip.state is TipState.MUST_RESUME
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED

    def test_resume_waits_for_free_slot(self):
        # A competing task occupies the only slot; the resume directive
        # must not fire until the slot frees.
        cluster = quick_cluster(map_slots=1)
        low = cluster.submit_job(job_spec(name="low", input_mb=35))
        cluster.start()
        tip = low.tips[0]
        high_spec = job_spec(name="high", input_mb=14, priority=5)

        def preempt():
            cluster.jobtracker.submit_job(high_spec)
            cluster.jobtracker.suspend_task(tip.tip_id)

        cluster.when_job_progress("low", 0.4, preempt)
        cluster.sim.run(until=9.0)
        assert tip.state is TipState.SUSPENDED
        cluster.jobtracker.resume_task(tip.tip_id)
        high = cluster.job_by_name("high")
        cluster.run_until_jobs_complete()
        # Resume confirmed only after 'high' released the slot.
        resumed = cluster.sim.trace_log.first("jt.resumed")
        assert resumed is not None
        launch_high = cluster.sim.trace_log.first(
            "attempt.launch", attempt=f"attempt_{high.tips[0].tip_id}_0"
        )
        assert resumed.time > launch_high.time
        assert low.state is JobState.SUCCEEDED


class TestKillProtocol:
    def test_kill_reschedules_from_scratch(self):
        cluster = quick_cluster()
        job = cluster.submit_job(job_spec())
        cluster.start()
        tip = job.tips[0]
        cluster.when_job_progress(
            "job", 0.5, lambda: cluster.jobtracker.kill_task(tip.tip_id)
        )
        cluster.run_until_jobs_complete()
        assert tip.state is TipState.SUCCEEDED
        assert tip.next_attempt_number == 2  # original + restart
        assert tip.wasted_seconds > 0

    def test_wasted_seconds_proportional_to_progress(self):
        results = {}
        for r in (0.25, 0.75):
            cluster = quick_cluster()
            job = cluster.submit_job(job_spec())
            cluster.start()
            tip = job.tips[0]
            cluster.when_job_progress(
                "job", r, lambda t=tip: cluster.jobtracker.kill_task(t.tip_id)
            )
            cluster.run_until_jobs_complete()
            results[r] = tip.wasted_seconds
        assert results[0.75] > results[0.25] > 0

    def test_directive_resend_after_timeout(self):
        cluster = quick_cluster(suspend_resend_timeout=2.0)
        job = cluster.submit_job(job_spec())
        cluster.start()
        cluster.sim.run(until=4.0)
        tip = job.tips[0]
        # Simulate a lost directive by marking it sent long ago.
        cluster.jobtracker.suspend_task(tip.tip_id)
        tip.directive_sent_at = 0.0
        report = cluster.trackers["node00"].build_report()
        response = cluster.jobtracker.heartbeat(report)
        assert any("suspend" in a.describe() for a in response.actions)
