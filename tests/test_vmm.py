"""The virtual memory manager: reclaim policy and swap-in.

These tests pin the three behaviours DESIGN.md calls the heart of the
reproduction: cache-first eviction at swappiness 0, suspended-first /
clean-first process eviction, and the approximate-LRU inflation/leak.
"""

import pytest

from repro.errors import OutOfMemoryError
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.signals import Signal
from repro.sim.engine import Simulation
from repro.units import GB, MB


def make_kernel(**overrides) -> NodeKernel:
    defaults = dict(
        ram_bytes=1 * GB,
        os_reserved_bytes=0,
        swap_bytes=2 * GB,
        page_cache_min_bytes=0,
        working_set_protect_bytes=64 * MB,
        lru_overshoot=0.0,
        lru_scan_leak=0.0,
        alloc_chunk_bytes=1 * GB,  # single-shot reclaim for deterministic tests
        direct_reclaim_fraction=1.0,
        fault_in_sync_fraction=1.0,
        hostname="vmmtest",
    )
    defaults.update(overrides)
    return NodeKernel(Simulation(seed=1), NodeConfig(**defaults))


class TestCacheFirstEviction:
    def test_swappiness_zero_drops_cache_before_processes(self):
        kernel = make_kernel()
        proc = kernel.spawn("victim")
        kernel.charge_allocation(proc, 600 * MB)
        kernel.vmm.cache_file_read(300 * MB)
        assert kernel.vmm.page_cache.size == 300 * MB
        # Free RAM is 1024-600-300 = 124 MB; allocating 300 MB forces a
        # 176 MB reclaim that the cache absorbs entirely.
        newcomer = kernel.spawn("newcomer")
        charge = kernel.charge_allocation(newcomer, 300 * MB)
        assert charge.swapped_out == 0
        assert kernel.vmm.page_cache.size == 124 * MB
        assert proc.image.swapped == 0

    def test_cache_respects_floor(self):
        kernel = make_kernel(page_cache_min_bytes=64 * MB)
        kernel.vmm.cache_file_read(200 * MB)
        freed = kernel.vmm.page_cache.shrink(1 * GB)
        assert kernel.vmm.page_cache.size == 64 * MB
        assert freed == 136 * MB


class TestProcessEviction:
    def test_stopped_process_evicted_before_running(self):
        kernel = make_kernel()
        stopped = kernel.spawn("stopped")
        kernel.charge_allocation(stopped, 400 * MB)
        kernel.signal(stopped.pid, Signal.SIGSTOP)
        running = kernel.spawn("running")
        kernel.charge_allocation(running, 400 * MB)
        # Demand forces ~300 MB of eviction: all from the stopped one.
        newcomer = kernel.spawn("new")
        charge = kernel.charge_allocation(newcomer, 500 * MB)
        assert charge.swapped_out > 0
        assert stopped.image.swapped > 0
        assert running.image.swapped == 0

    def test_clean_pages_dropped_before_dirty_swapped(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim")
        kernel.charge_allocation(victim, 300 * MB, dirty=True)
        victim.image.allocate(300 * MB, dirty=False, now=0.0)
        kernel.signal(victim.pid, Signal.SIGSTOP)
        newcomer = kernel.spawn("new")
        # Need ~200 MB: clean pages cover it for free.
        charge = kernel.charge_allocation(newcomer, 600 * MB)
        assert charge.swapped_out == 0
        assert victim.image.resident_clean < 300 * MB

    def test_oom_when_ram_and_swap_exhausted(self):
        kernel = make_kernel(swap_bytes=64 * MB)
        hog = kernel.spawn("hog")
        kernel.charge_allocation(hog, 900 * MB)
        kernel.signal(hog.pid, Signal.SIGSTOP)
        newcomer = kernel.spawn("new")
        with pytest.raises(OutOfMemoryError):
            kernel.charge_allocation(newcomer, 900 * MB)

    def test_reclaim_cost_charged_to_allocator(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim")
        kernel.charge_allocation(victim, 800 * MB)
        kernel.signal(victim.pid, Signal.SIGSTOP)
        newcomer = kernel.spawn("new")
        charge = kernel.charge_allocation(newcomer, 800 * MB)
        assert charge.reclaim_time > 0
        assert charge.total_time > charge.touch_time


class TestApproximateLru:
    def test_overshoot_inflates_eviction(self):
        plain = make_kernel(lru_overshoot=0.0)
        inflated = make_kernel(lru_overshoot=2.0)
        for kernel in (plain, inflated):
            victim = kernel.spawn("victim")
            kernel.charge_allocation(victim, 700 * MB)
            kernel.signal(victim.pid, Signal.SIGSTOP)
            newcomer = kernel.spawn("new")
            kernel.charge_allocation(newcomer, 500 * MB)
        swapped_plain = plain.vmm.swap.total_out
        swapped_inflated = inflated.vmm.swap.total_out
        assert swapped_inflated > swapped_plain

    def test_leak_spills_onto_running_cold_pages(self):
        kernel = make_kernel(lru_scan_leak=1.0, working_set_protect_bytes=32 * MB,
                             alloc_chunk_bytes=32 * MB)
        victim = kernel.spawn("victim")
        kernel.charge_allocation(victim, 500 * MB)
        kernel.signal(victim.pid, Signal.SIGSTOP)
        hog = kernel.spawn("hog")
        kernel.charge_allocation(hog, 800 * MB)
        # With a full leak the allocator's own cold pages get evicted too.
        assert hog.image.swapped > 0
        assert victim.image.swapped > 0
        # And the victim keeps more resident than it would without leak.
        no_leak = make_kernel(lru_scan_leak=0.0, alloc_chunk_bytes=32 * MB)
        victim2 = no_leak.spawn("victim")
        no_leak.charge_allocation(victim2, 500 * MB)
        no_leak.signal(victim2.pid, Signal.SIGSTOP)
        hog2 = no_leak.spawn("hog")
        no_leak.charge_allocation(hog2, 800 * MB)
        assert victim.image.swapped < victim2.image.swapped


class TestFaultIn:
    def test_fault_in_restores_everything(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim")
        kernel.charge_allocation(victim, 700 * MB)
        kernel.signal(victim.pid, Signal.SIGSTOP)
        newcomer = kernel.spawn("new")
        kernel.charge_allocation(newcomer, 600 * MB)
        assert victim.image.swapped > 0
        # Free the newcomer so the fault-in has room.
        kernel.signal(newcomer.pid, Signal.SIGKILL)
        result = kernel.vmm.fault_in(victim)
        assert result.paged_in > 0
        assert result.time_cost > 0
        assert victim.image.swapped == 0
        assert kernel.vmm.swap.swapped_bytes(victim.pid) == 0

    def test_fault_in_noop_without_swap(self):
        kernel = make_kernel()
        proc = kernel.spawn("p")
        kernel.charge_allocation(proc, 100 * MB)
        result = kernel.vmm.fault_in(proc)
        assert result.paged_in == 0
        assert result.time_cost == 0.0

    def test_dead_process_releases_ram_and_swap(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim")
        kernel.charge_allocation(victim, 700 * MB)
        kernel.signal(victim.pid, Signal.SIGSTOP)
        newcomer = kernel.spawn("new")
        kernel.charge_allocation(newcomer, 600 * MB)
        before = kernel.vmm.free_ram()
        kernel.signal(victim.pid, Signal.SIGKILL)
        assert kernel.vmm.swap.swapped_bytes(victim.pid) == 0
        assert kernel.vmm.free_ram() > before
        kernel.check_invariants()


class TestAsyncFractions:
    def test_direct_reclaim_fraction_scales_stall(self):
        full = make_kernel(direct_reclaim_fraction=1.0)
        half = make_kernel(direct_reclaim_fraction=0.5)
        stalls = {}
        for name, kernel in (("full", full), ("half", half)):
            victim = kernel.spawn("victim")
            kernel.charge_allocation(victim, 800 * MB)
            kernel.signal(victim.pid, Signal.SIGSTOP)
            newcomer = kernel.spawn("new")
            stalls[name] = kernel.charge_allocation(newcomer, 800 * MB).reclaim_time
        assert stalls["half"] == pytest.approx(stalls["full"] / 2, rel=0.01)
